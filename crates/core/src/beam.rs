//! The proposed BS-SA search (paper Algorithm 1): beam search over
//! decomposition-setting sequences in the first round, SA-driven
//! refinement (and per-bit mode selection) in later rounds.

use crate::budget::{BudgetTimer, RunBudget};
use crate::config::{ApproxLutConfig, BitConfig};
use crate::error::DalutError;
use crate::observe::{observe_kernel, Observer, SearchEvent};
use crate::outcome::{BitModeOptions, SearchOutcome};
use crate::params::{ArchPolicy, BsSaParams};
use crate::sa::{find_best_settings_observed, DecompMode};
use dalut_boolfn::{metrics, BoolFnError, InputDistribution, Partition, TruthTable};
use dalut_decomp::{bit_costs, column_error, opt_for_part, AnyDecomp, LsbFill, OptParams, Setting};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A partial decomposition-setting sequence during the beam phase.
#[derive(Debug, Clone)]
struct SeqState {
    /// Per-bit settings; `None` for bits not yet optimised.
    settings: Vec<Option<Setting>>,
    /// Error of the most recently assigned setting — the predictive-model
    /// MED of the whole sequence at that point.
    score: f64,
}

impl SeqState {
    fn empty(m: usize) -> Self {
        Self {
            settings: vec![None; m],
            score: f64::INFINITY,
        }
    }

    fn with(&self, bit: usize, setting: Setting) -> Self {
        let mut s = self.clone();
        s.score = setting.error;
        s.settings[bit] = Some(setting);
        s
    }

    /// Materialises the approximation: set bits take their decomposition,
    /// unset bits stay accurate (their influence on the cost model is
    /// governed by the LSB-fill mode, not by these placeholder values).
    fn materialize(&self, target: &TruthTable) -> TruthTable {
        let mut t = target.clone();
        for (bit, s) in self.settings.iter().enumerate() {
            if let Some(s) = s {
                t.set_bit_column(bit, &s.decomp.to_bit_column());
            }
        }
        t
    }
}

/// Keeps the `width` best-scoring sequences of a beam round.
fn prune(mut candidates: Vec<SeqState>, width: usize) -> Vec<SeqState> {
    candidates.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("scores never NaN"));
    candidates.truncate(width.max(1));
    candidates
}

/// Derives a per-call seed from the run seed and the call coordinates so
/// results do not depend on evaluation order.
fn call_seed(base: u64, round: usize, bit: usize, branch: usize) -> u64 {
    let mut h = base ^ 0xD6E8_FEB8_6659_FD93u64;
    for v in [round as u64, bit as u64, branch as u64] {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
    }
    h
}

/// Applies the paper's mode-selection rule (§IV-A / §IV-B2) to the best
/// settings found per mode. `E` is the normal-mode error.
fn choose_mode(
    policy: ArchPolicy,
    normal: &Setting,
    bto: Option<&Setting>,
    nd: Option<&Setting>,
) -> Setting {
    let e = normal.error;
    match policy {
        ArchPolicy::NormalOnly => normal.clone(),
        ArchPolicy::BtoNormal { delta } => match bto {
            Some(b) if b.error <= (1.0 + delta) * e => b.clone(),
            _ => normal.clone(),
        },
        ArchPolicy::BtoNormalNd { delta, delta_prime } => {
            let e_bto = bto.map(|s| s.error);
            let e_nd = nd.map(|s| s.error);
            if let (Some(eb), Some(en)) = (e_bto, e_nd) {
                if eb <= (1.0 + delta) * e && en >= (1.0 - delta_prime) * e {
                    return bto.expect("checked above").clone();
                }
                if en < (1.0 - delta) * e {
                    return nd.expect("checked above").clone();
                }
            }
            normal.clone()
        }
    }
}

/// Completes a budget-terminated sequence: any bit the search never
/// reached gets a cheap normal-mode decomposition on the canonical
/// lowest-`b`-bits partition, so the returned configuration is always
/// complete and valid. Deterministic (fixed kernel seed), and never run
/// on the completed path.
fn fill_unassigned(
    best: &mut SeqState,
    target: &TruthTable,
    dist: &InputDistribution,
    b: usize,
    obs: &dyn Observer,
) -> Result<TruthTable, DalutError> {
    let n = target.inputs();
    let part = Partition::new(n, (1u32 << b) - 1)
        .map_err(|e| DalutError::InvalidParams(format!("fill partition: {e}")))?;
    let opt = OptParams {
        restarts: 0,
        max_iters: 16,
    };
    // One materialisation up front; filled bits are patched into the
    // approximation column-by-column as they land.
    let mut g_hat = best.materialize(target);
    for bit in 0..best.settings.len() {
        if best.settings[bit].is_some() {
            continue;
        }
        let costs = bit_costs(target, &g_hat, bit, dist, LsbFill::FromApprox)?;
        let mut rng = StdRng::seed_from_u64(0);
        let (e, d) = observe_kernel(obs, DecompMode::Normal, || {
            opt_for_part(&costs, part, opt, &mut rng)
        })?;
        let setting = Setting::new(e, AnyDecomp::Normal(d));
        g_hat.set_bit_column(bit, &setting.decomp.to_bit_column());
        best.settings[bit] = Some(setting);
    }
    Ok(g_hat)
}

/// The BS-SA search engine behind [`ApproxLutBuilder`]
/// (crate::pipeline::ApproxLutBuilder), with an [`Observer`] attached.
///
/// Round 1 is a beam search over the output bits from the MSB down: for
/// every sequence in the beam, `FindBestSettings` (Algorithm 2) proposes
/// the top `N_beam` settings for the current bit under the predictive LSB
/// model (§III-B), and the best `N_beam` extended sequences survive.
/// Rounds 2..R re-optimise each bit greedily against the materialised
/// approximation; in the **final** round the best BTO / ND settings are
/// also computed and the paper's `δ`/`δ'` rule picks each bit's operating
/// mode. The budget is checked at per-bit optimisation boundaries (and,
/// inside each `FindBestSettings` call, at SA chain-step boundaries), so
/// RNG streams are consumed exactly as in an unbudgeted run: a run that
/// finishes within its budget returns a byte-identical [`SearchOutcome`]
/// (modulo `elapsed`). When the budget trips, the search stops where it
/// is, completes any not-yet-assigned bits with a cheap deterministic
/// fill, and returns whichever of {current state, best completed round}
/// has the lower true MED — tagged with the appropriate
/// [`Termination`](crate::budget::Termination).
pub(crate) fn bs_sa_engine(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &BsSaParams,
    policy: ArchPolicy,
    budget: &RunBudget,
    obs: &dyn Observer,
) -> Result<SearchOutcome, DalutError> {
    let timer = BudgetTimer::new(budget);
    let n = target.inputs();
    let m = target.outputs();
    let b = params.search.bound_size;
    if b == 0 || b >= n {
        return Err(DalutError::InvalidParams(format!(
            "bound size must satisfy 0 < b < n (got b = {b}, n = {n})"
        )));
    }
    if dist.inputs() != n {
        return Err(BoolFnError::DimensionMismatch(format!(
            "distribution over {} bits, function over {n}",
            dist.inputs()
        ))
        .into());
    }
    let seed = params.search.seed;
    let mut round_meds = Vec::with_capacity(params.search.rounds);
    obs.on_event(&SearchEvent::SearchStarted {
        algorithm: "bs-sa".into(),
        inputs: n,
        outputs: m,
        rounds: params.search.rounds,
        seed,
    });

    // ---- Round 1: beam search (Algorithm 1, lines 1-10). ----
    obs.on_event(&SearchEvent::PhaseStarted {
        phase: "beam".into(),
    });
    let mut beam: Vec<SeqState> = vec![SeqState::empty(m)];
    'round1: for k in (0..m).rev() {
        let mut candidates: Vec<SeqState> = Vec::new();
        for (bi, seq) in beam.iter().enumerate() {
            if timer.exhausted() {
                // Keep whatever extensions of this bit already exist; the
                // unreached bits are filled below.
                if !candidates.is_empty() {
                    beam = prune(candidates, params.beam_width);
                }
                break 'round1;
            }
            let g_hat = seq.materialize(target);
            let costs = bit_costs(target, &g_hat, k, dist, params.round1_fill)?;
            let tops = find_best_settings_observed(
                &costs,
                n,
                DecompMode::Normal,
                params,
                params.beam_width,
                call_seed(seed, 1, k, bi),
                None,
                &timer,
                obs,
            )?;
            for s in tops {
                candidates.push(seq.with(k, s));
            }
        }
        let scored = candidates.len();
        beam = prune(candidates, params.beam_width);
        obs.on_event(&SearchEvent::BeamGeneration {
            bit: k,
            candidates: scored,
            kept: beam.len(),
        });
        timer.count_iteration();
        obs.on_event(&SearchEvent::BudgetTick {
            iterations: timer.iterations(),
        });
    }
    let mut best = beam.into_iter().next().expect("beam is never empty");
    let g_hat = if timer.exhausted() {
        fill_unassigned(&mut best, target, dist, b, obs)?
    } else {
        best.materialize(target)
    };
    round_meds.push(metrics::med(target, &g_hat, dist)?);
    drop(g_hat);
    obs.on_event(&SearchEvent::RoundFinished {
        round: 1,
        med: round_meds[0],
    });
    obs.on_event(&SearchEvent::PhaseFinished {
        phase: "beam".into(),
    });

    // The best fully-assigned state seen so far, by true MED: budget
    // exhaustion in a later round must never return something worse than
    // an already-completed round.
    let mut snapshot = (best.clone(), round_meds[0]);
    // True MED of `best` whenever it is known, so early exits never
    // re-score a state that has not changed since it was last measured.
    let mut best_scored = Some(round_meds[0]);

    // ---- Rounds 2..R: greedy refinement + mode selection (lines 11-15). ----
    let mut mode_options: Option<Vec<BitModeOptions>> = None;
    obs.on_event(&SearchEvent::PhaseStarted {
        phase: "refine".into(),
    });
    'refine: for round in 2..=params.search.rounds {
        let is_final = round == params.search.rounds;
        let mut final_options: Vec<BitModeOptions> = Vec::with_capacity(m);
        for k in (0..m).rev() {
            if timer.exhausted() {
                break 'refine;
            }
            let g_hat = best.materialize(target);
            let costs = bit_costs(target, &g_hat, k, dist, LsbFill::FromApprox)?;
            // The incumbent setting, re-scored under the current context:
            // refinement must never silently lose to it within its own
            // mode class, and its partition seeds the first SA chain.
            let incumbent = best.settings[k]
                .as_ref()
                .map(|s| {
                    let col = s.decomp.to_bit_column();
                    Setting::new(column_error(&costs, &col), s.decomp.clone())
                })
                .expect("every bit assigned in round 1");
            let start = Some(incumbent.decomp.partition());
            let better = |sa: Option<Setting>, mode: &str| -> Option<Setting> {
                match sa {
                    Some(sa)
                        if incumbent.decomp.mode_name() != mode || sa.error <= incumbent.error =>
                    {
                        Some(sa)
                    }
                    Some(_) => Some(incumbent.clone()),
                    None => None,
                }
            };
            let normal = better(
                find_best_settings_observed(
                    &costs,
                    n,
                    DecompMode::Normal,
                    params,
                    1,
                    call_seed(seed, round, k, 0),
                    start,
                    &timer,
                    obs,
                )?
                .into_iter()
                .next(),
                "normal",
            )
            .expect("SA always returns at least one setting");

            // Mode selection happens at line 14 of every later round; the
            // alternatives from the final round are additionally recorded
            // for trade-off sweeps. (A budget trip during the normal-mode
            // call skips the alternatives — never taken on the completed
            // path, where the timer cannot be exhausted.)
            let (bto, nd) = if policy.allows_bto() && !timer.exhausted() {
                let bto = better(
                    find_best_settings_observed(
                        &costs,
                        n,
                        DecompMode::Bto,
                        params,
                        1,
                        call_seed(seed, round, k, 1),
                        start,
                        &timer,
                        obs,
                    )?
                    .into_iter()
                    .next(),
                    "bto",
                );
                let nd = if policy.allows_nd() {
                    better(
                        find_best_settings_observed(
                            &costs,
                            n,
                            DecompMode::NonDisjoint,
                            params,
                            1,
                            call_seed(seed, round, k, 2),
                            start,
                            &timer,
                            obs,
                        )?
                        .into_iter()
                        .next(),
                        "nd",
                    )
                } else {
                    None
                };
                (bto, nd)
            } else {
                (None, None)
            };

            let chosen = choose_mode(policy, &normal, bto.as_ref(), nd.as_ref());
            obs.on_event(&SearchEvent::BitRefined {
                round,
                bit: k,
                mode: match &chosen.decomp {
                    AnyDecomp::Normal(_) => DecompMode::Normal,
                    AnyDecomp::Bto(_) => DecompMode::Bto,
                    AnyDecomp::NonDisjoint(_) => DecompMode::NonDisjoint,
                },
                error: chosen.error,
            });
            if is_final && policy.allows_bto() {
                final_options.push(BitModeOptions {
                    bit: k,
                    normal,
                    bto,
                    nd,
                });
            }
            best = best.with(k, chosen);
            best_scored = None;
            timer.count_iteration();
            obs.on_event(&SearchEvent::BudgetTick {
                iterations: timer.iterations(),
            });
        }
        let g_hat = best.materialize(target);
        let med = metrics::med(target, &g_hat, dist)?;
        round_meds.push(med);
        best_scored = Some(med);
        obs.on_event(&SearchEvent::RoundFinished { round, med });
        if med <= snapshot.1 {
            snapshot = (best.clone(), med);
        }
        if is_final && policy.allows_bto() {
            final_options.reverse(); // ascending by bit
            mode_options = Some(final_options);
        }
    }
    obs.on_event(&SearchEvent::PhaseFinished {
        phase: "refine".into(),
    });

    // On early termination the current (partially refined) state competes
    // against the best completed round; the outcome is whichever has the
    // lower true MED. Never taken on the completed path, where `best` is
    // exactly the last round's state.
    if timer.exhausted() {
        let med_now = match best_scored {
            Some(s) => s,
            None => {
                let g_hat = best.materialize(target);
                metrics::med(target, &g_hat, dist)?
            }
        };
        if snapshot.1 < med_now {
            best = snapshot.0;
            best_scored = Some(snapshot.1);
        } else {
            best_scored = Some(med_now);
        }
    }

    let bits = best
        .settings
        .into_iter()
        .enumerate()
        .map(|(bit, s)| BitConfig::from_setting(bit, s.expect("every bit assigned in round 1")))
        .collect();
    let config = ApproxLutConfig::new(n, m, bits)?;
    // `materialize` and `to_truth_table` patch the same decomposition
    // columns onto the same grid, so a known score is the exact MED of
    // `config` — no need to re-measure a state scored moments ago.
    let med = match best_scored {
        Some(s) => s,
        None => config.med(target, dist)?,
    };
    if timer.termination().is_early() && round_meds.last() != Some(&med) {
        // Keep the `med == round_meds.last()` invariant on early exits too.
        round_meds.push(med);
    }
    obs.on_event(&SearchEvent::SearchFinished {
        med,
        iterations: timer.iterations(),
        termination: timer.termination(),
    });
    Ok(SearchOutcome {
        config,
        med,
        round_meds,
        elapsed: timer.elapsed(),
        mode_options,
        termination: timer.termination(),
        iterations: timer.iterations(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ApproxLutBuilder;
    use dalut_boolfn::builder::random_table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64, n: usize, m: usize) -> (TruthTable, InputDistribution) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            random_table(n, m, &mut rng).unwrap(),
            InputDistribution::uniform(n).unwrap(),
        )
    }

    // Thin builder wrappers so the tests below read like the old
    // free-function call sites.
    fn run_bs_sa(
        target: &TruthTable,
        dist: &InputDistribution,
        params: &BsSaParams,
        policy: ArchPolicy,
    ) -> Result<SearchOutcome, DalutError> {
        ApproxLutBuilder::new(target)
            .distribution(dist.clone())
            .bs_sa(*params)
            .policy(policy)
            .run()
    }

    fn run_bs_sa_budgeted(
        target: &TruthTable,
        dist: &InputDistribution,
        params: &BsSaParams,
        policy: ArchPolicy,
        budget: &RunBudget,
    ) -> Result<SearchOutcome, DalutError> {
        ApproxLutBuilder::new(target)
            .distribution(dist.clone())
            .bs_sa(*params)
            .policy(policy)
            .budget(budget.clone())
            .run()
    }

    #[test]
    fn bs_sa_produces_valid_outcome() {
        let (g, d) = problem(1, 6, 3);
        let out = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        assert_eq!(out.config.outputs(), 3);
        assert!((out.config.med(&g, &d).unwrap() - out.med).abs() < 1e-12);
        assert_eq!(out.round_meds.len(), BsSaParams::fast().search.rounds);
        assert!(out.mode_options.is_none());
    }

    #[test]
    fn bs_sa_is_deterministic_given_seed() {
        let (g, d) = problem(2, 6, 3);
        let a = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        let b = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        assert_eq!(a.config, b.config);
    }

    #[test]
    fn bto_normal_policy_records_options_and_modes() {
        let (g, d) = problem(3, 6, 3);
        let out = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::bto_normal_paper()).unwrap();
        let opts = out.mode_options.as_ref().expect("options recorded");
        assert_eq!(opts.len(), 3);
        for (i, o) in opts.iter().enumerate() {
            assert_eq!(o.bit, i);
            assert!(o.bto.is_some());
            assert!(o.nd.is_none());
            // BTO restricted search can never beat normal on error.
            assert!(o.bto.as_ref().unwrap().error >= o.normal.error - 1e-12);
        }
        // No ND bits can appear under BtoNormal.
        assert_eq!(out.config.mode_counts().2, 0);
    }

    #[test]
    fn bto_normal_nd_policy_can_use_all_modes() {
        let (g, d) = problem(4, 7, 4);
        let out = run_bs_sa(
            &g,
            &d,
            &BsSaParams::fast(),
            ArchPolicy::bto_normal_nd_paper(),
        )
        .unwrap();
        let opts = out.mode_options.as_ref().expect("options recorded");
        for o in opts {
            assert!(o.bto.is_some());
            assert!(o.nd.is_some());
        }
        let (bto, normal, nd) = out.config.mode_counts();
        assert_eq!(bto + normal + nd, 4);
    }

    #[test]
    fn choose_mode_implements_paper_rule() {
        use dalut_boolfn::Partition;
        use dalut_decomp::{AnyDecomp, BtoDecomp};
        let p = Partition::new(6, 0b000111).unwrap();
        let mk = |e: f64| {
            Setting::new(
                e,
                AnyDecomp::Bto(BtoDecomp::new(p, vec![false; p.cols()]).unwrap()),
            )
        };
        let normal = mk(10.0);
        // BTO within (1+delta): chosen under BtoNormal.
        let sel = choose_mode(
            ArchPolicy::BtoNormal { delta: 0.05 },
            &normal,
            Some(&mk(10.4)),
            None,
        );
        assert_eq!(sel.error, 10.4);
        // BTO too bad: normal stays.
        let sel = choose_mode(
            ArchPolicy::BtoNormal { delta: 0.05 },
            &normal,
            Some(&mk(11.0)),
            None,
        );
        assert_eq!(sel.error, 10.0);
        // ND much better than normal: ND chosen.
        let sel = choose_mode(
            ArchPolicy::BtoNormalNd {
                delta: 0.01,
                delta_prime: 0.1,
            },
            &normal,
            Some(&mk(10.05)),
            Some(&mk(8.0)),
        );
        assert_eq!(sel.error, 8.0);
        // ND only slightly better AND BTO close: BTO wins (power saving).
        let sel = choose_mode(
            ArchPolicy::BtoNormalNd {
                delta: 0.01,
                delta_prime: 0.1,
            },
            &normal,
            Some(&mk(10.05)),
            Some(&mk(9.5)),
        );
        assert_eq!(sel.error, 10.05);
        // Neither BTO close nor ND much better: normal.
        let sel = choose_mode(
            ArchPolicy::BtoNormalNd {
                delta: 0.01,
                delta_prime: 0.1,
            },
            &normal,
            Some(&mk(11.0)),
            Some(&mk(9.95)),
        );
        assert_eq!(sel.error, 10.0);
    }

    #[test]
    fn call_seed_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..6 {
            for k in 0..16 {
                for br in 0..4 {
                    assert!(seen.insert(call_seed(42, r, k, br)));
                }
            }
        }
    }

    #[test]
    fn beam_width_one_still_works() {
        let (g, d) = problem(5, 6, 2);
        let mut params = BsSaParams::fast();
        params.beam_width = 1;
        let out = run_bs_sa(&g, &d, &params, ArchPolicy::NormalOnly).unwrap();
        assert!(out.med.is_finite());
    }

    #[test]
    fn zero_deadline_still_yields_a_complete_valid_outcome() {
        use crate::budget::Termination;
        let (g, d) = problem(7, 6, 3);
        let budget = RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        let out = run_bs_sa_budgeted(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly, &budget)
            .unwrap();
        assert_eq!(out.termination, Termination::DeadlineExceeded);
        // Every bit configured, MED faithful, invariant med == last round med.
        assert_eq!(out.config.outputs(), 3);
        assert!((out.config.med(&g, &d).unwrap() - out.med).abs() < 1e-12);
        assert!((out.med - out.round_meds.last().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn generous_budget_is_byte_identical_to_unbudgeted() {
        use crate::budget::Termination;
        let (g, d) = problem(8, 6, 3);
        let plain = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::bto_normal_paper()).unwrap();
        let budget = RunBudget::unlimited()
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_max_iterations(u64::MAX);
        let budgeted = run_bs_sa_budgeted(
            &g,
            &d,
            &BsSaParams::fast(),
            ArchPolicy::bto_normal_paper(),
            &budget,
        )
        .unwrap();
        assert_eq!(plain.termination, Termination::Completed);
        assert_eq!(budgeted.termination, Termination::Completed);
        assert_eq!(plain.config, budgeted.config);
        assert_eq!(plain.round_meds, budgeted.round_meds);
        assert_eq!(plain.mode_options, budgeted.mode_options);
    }

    #[test]
    fn iteration_cap_interrupts_but_never_beats_a_completed_round() {
        use crate::budget::Termination;
        let (g, d) = problem(9, 6, 3);
        // Iterations count SA chain-steps *and* per-bit refinement steps,
        // so a range of small caps trips the budget at many different
        // interior points; the outcome must stay valid at every one, and
        // never worse than its own first recorded round (the snapshot
        // guarantees monotonicity versus completed rounds).
        let full = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        for cap in [1u64, 4, 16, 64, 256] {
            let budget = RunBudget::unlimited().with_max_iterations(cap);
            let out =
                run_bs_sa_budgeted(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly, &budget)
                    .unwrap();
            assert!((out.config.med(&g, &d).unwrap() - out.med).abs() < 1e-12);
            if out.termination == Termination::Completed {
                // A cap the run never reaches must change nothing.
                assert_eq!(out.config, full.config, "cap {cap}");
            } else {
                assert_eq!(out.termination, Termination::DeadlineExceeded, "cap {cap}");
                assert!(out.med <= out.round_meds[0] + 1e-12, "cap {cap}");
            }
        }
    }

    #[test]
    fn invalid_bound_size_is_a_typed_error() {
        use crate::error::DalutError;
        let (g, d) = problem(10, 6, 2);
        let mut params = BsSaParams::fast();
        params.search.bound_size = 6;
        let r = run_bs_sa(&g, &d, &params, ArchPolicy::NormalOnly);
        assert!(matches!(r, Err(DalutError::InvalidParams(_))));
    }

    #[test]
    fn final_med_equals_last_round_med() {
        // Algorithm 1 replaces settings unconditionally in later rounds
        // (line 15), so the MED need not be monotone across rounds — but
        // the outcome's MED must be the last round's materialised MED.
        let (g, d) = problem(6, 7, 3);
        let out = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        let last = *out.round_meds.last().unwrap();
        assert!((out.med - last).abs() < 1e-12);
        for m in &out.round_meds {
            assert!(m.is_finite());
        }
    }
}
