//! The proposed BS-SA search (paper Algorithm 1): beam search over
//! decomposition-setting sequences in the first round, SA-driven
//! refinement (and per-bit mode selection) in later rounds.

use crate::config::{ApproxLutConfig, BitConfig};
use crate::outcome::{BitModeOptions, SearchOutcome};
use crate::params::{ArchPolicy, BsSaParams};
use crate::sa::{find_best_settings, DecompMode};
use dalut_boolfn::{metrics, BoolFnError, InputDistribution, TruthTable};
use dalut_decomp::{bit_costs, column_error, LsbFill, Setting};
use std::time::Instant;

/// A partial decomposition-setting sequence during the beam phase.
#[derive(Debug, Clone)]
struct SeqState {
    /// Per-bit settings; `None` for bits not yet optimised.
    settings: Vec<Option<Setting>>,
    /// Error of the most recently assigned setting — the predictive-model
    /// MED of the whole sequence at that point.
    score: f64,
}

impl SeqState {
    fn empty(m: usize) -> Self {
        Self {
            settings: vec![None; m],
            score: f64::INFINITY,
        }
    }

    fn with(&self, bit: usize, setting: Setting) -> Self {
        let mut s = self.clone();
        s.score = setting.error;
        s.settings[bit] = Some(setting);
        s
    }

    /// Materialises the approximation: set bits take their decomposition,
    /// unset bits stay accurate (their influence on the cost model is
    /// governed by the LSB-fill mode, not by these placeholder values).
    fn materialize(&self, target: &TruthTable) -> TruthTable {
        let mut t = target.clone();
        for (bit, s) in self.settings.iter().enumerate() {
            if let Some(s) = s {
                t.set_bit_column(bit, &s.decomp.to_bit_column());
            }
        }
        t
    }
}

/// Derives a per-call seed from the run seed and the call coordinates so
/// results do not depend on evaluation order.
fn call_seed(base: u64, round: usize, bit: usize, branch: usize) -> u64 {
    let mut h = base ^ 0xD6E8_FEB8_6659_FD93u64;
    for v in [round as u64, bit as u64, branch as u64] {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
    }
    h
}

/// Applies the paper's mode-selection rule (§IV-A / §IV-B2) to the best
/// settings found per mode. `E` is the normal-mode error.
fn choose_mode(
    policy: ArchPolicy,
    normal: &Setting,
    bto: Option<&Setting>,
    nd: Option<&Setting>,
) -> Setting {
    let e = normal.error;
    match policy {
        ArchPolicy::NormalOnly => normal.clone(),
        ArchPolicy::BtoNormal { delta } => match bto {
            Some(b) if b.error <= (1.0 + delta) * e => b.clone(),
            _ => normal.clone(),
        },
        ArchPolicy::BtoNormalNd { delta, delta_prime } => {
            let e_bto = bto.map(|s| s.error);
            let e_nd = nd.map(|s| s.error);
            if let (Some(eb), Some(en)) = (e_bto, e_nd) {
                if eb <= (1.0 + delta) * e && en >= (1.0 - delta_prime) * e {
                    return bto.expect("checked above").clone();
                }
                if en < (1.0 - delta) * e {
                    return nd.expect("checked above").clone();
                }
            }
            normal.clone()
        }
    }
}

/// Runs the BS-SA search and configures the architecture given by
/// `policy`.
///
/// Round 1 is a beam search over the output bits from the MSB down: for
/// every sequence in the beam, `FindBestSettings` (Algorithm 2) proposes
/// the top `N_beam` settings for the current bit under the predictive LSB
/// model (§III-B), and the best `N_beam` extended sequences survive.
/// Rounds 2..R re-optimise each bit greedily against the materialised
/// approximation; in the **final** round the best BTO / ND settings are
/// also computed and the paper's `δ`/`δ'` rule picks each bit's operating
/// mode.
///
/// # Errors
///
/// Returns an error on shape mismatch between `target` and `dist`.
///
/// # Panics
///
/// Panics if `params.search.bound_size` is not in `1..target.inputs()`.
pub fn run_bs_sa(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &BsSaParams,
    policy: ArchPolicy,
) -> Result<SearchOutcome, BoolFnError> {
    let start = Instant::now();
    let n = target.inputs();
    let m = target.outputs();
    let b = params.search.bound_size;
    assert!(b > 0 && b < n, "bound size must satisfy 0 < b < n");
    if dist.inputs() != n {
        return Err(BoolFnError::DimensionMismatch(format!(
            "distribution over {} bits, function over {n}",
            dist.inputs()
        )));
    }
    let seed = params.search.seed;
    let mut round_meds = Vec::with_capacity(params.search.rounds);

    // ---- Round 1: beam search (Algorithm 1, lines 1-10). ----
    let mut beam: Vec<SeqState> = vec![SeqState::empty(m)];
    for k in (0..m).rev() {
        let mut candidates: Vec<SeqState> = Vec::new();
        for (bi, seq) in beam.iter().enumerate() {
            let g_hat = seq.materialize(target);
            let costs = bit_costs(target, &g_hat, k, dist, params.round1_fill)?;
            let tops = find_best_settings(
                &costs,
                n,
                DecompMode::Normal,
                params,
                params.beam_width,
                call_seed(seed, 1, k, bi),
                None,
            );
            for s in tops {
                candidates.push(seq.with(k, s));
            }
        }
        candidates.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("scores never NaN"));
        candidates.truncate(params.beam_width.max(1));
        beam = candidates;
    }
    let mut best = beam.into_iter().next().expect("beam is never empty");
    {
        let g_hat = best.materialize(target);
        round_meds.push(metrics::med(target, &g_hat, dist)?);
    }

    // ---- Rounds 2..R: greedy refinement + mode selection (lines 11-15). ----
    let mut mode_options: Option<Vec<BitModeOptions>> = None;
    for round in 2..=params.search.rounds {
        let is_final = round == params.search.rounds;
        let mut final_options: Vec<BitModeOptions> = Vec::with_capacity(m);
        for k in (0..m).rev() {
            let g_hat = best.materialize(target);
            let costs = bit_costs(target, &g_hat, k, dist, LsbFill::FromApprox)?;
            // The incumbent setting, re-scored under the current context:
            // refinement must never silently lose to it within its own
            // mode class, and its partition seeds the first SA chain.
            let incumbent = best.settings[k]
                .as_ref()
                .map(|s| {
                    let col = s.decomp.to_bit_column();
                    Setting::new(column_error(&costs, &col), s.decomp.clone())
                })
                .expect("every bit assigned in round 1");
            let start = Some(incumbent.decomp.partition());
            let better = |sa: Option<Setting>, mode: &str| -> Option<Setting> {
                match sa {
                    Some(sa)
                        if incumbent.decomp.mode_name() != mode || sa.error <= incumbent.error =>
                    {
                        Some(sa)
                    }
                    Some(_) => Some(incumbent.clone()),
                    None => None,
                }
            };
            let normal = better(
                find_best_settings(
                    &costs,
                    n,
                    DecompMode::Normal,
                    params,
                    1,
                    call_seed(seed, round, k, 0),
                    start,
                )
                .into_iter()
                .next(),
                "normal",
            )
            .expect("SA always returns at least one setting");

            // Mode selection happens at line 14 of every later round; the
            // alternatives from the final round are additionally recorded
            // for trade-off sweeps.
            let (bto, nd) = if policy.allows_bto() {
                let bto = better(
                    find_best_settings(
                        &costs,
                        n,
                        DecompMode::Bto,
                        params,
                        1,
                        call_seed(seed, round, k, 1),
                        start,
                    )
                    .into_iter()
                    .next(),
                    "bto",
                );
                let nd = if policy.allows_nd() {
                    better(
                        find_best_settings(
                            &costs,
                            n,
                            DecompMode::NonDisjoint,
                            params,
                            1,
                            call_seed(seed, round, k, 2),
                            start,
                        )
                        .into_iter()
                        .next(),
                        "nd",
                    )
                } else {
                    None
                };
                (bto, nd)
            } else {
                (None, None)
            };

            let chosen = choose_mode(policy, &normal, bto.as_ref(), nd.as_ref());
            if is_final && policy.allows_bto() {
                final_options.push(BitModeOptions {
                    bit: k,
                    normal,
                    bto,
                    nd,
                });
            }
            best = best.with(k, chosen);
        }
        let g_hat = best.materialize(target);
        round_meds.push(metrics::med(target, &g_hat, dist)?);
        if is_final && policy.allows_bto() {
            final_options.reverse(); // ascending by bit
            mode_options = Some(final_options);
        }
    }

    let bits = best
        .settings
        .into_iter()
        .enumerate()
        .map(|(bit, s)| BitConfig::from_setting(bit, s.expect("every bit assigned in round 1")))
        .collect();
    let config = ApproxLutConfig::new(n, m, bits)?;
    let med = config.med(target, dist)?;
    Ok(SearchOutcome {
        config,
        med,
        round_meds,
        elapsed: start.elapsed(),
        mode_options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::builder::random_table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64, n: usize, m: usize) -> (TruthTable, InputDistribution) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            random_table(n, m, &mut rng).unwrap(),
            InputDistribution::uniform(n).unwrap(),
        )
    }

    #[test]
    fn bs_sa_produces_valid_outcome() {
        let (g, d) = problem(1, 6, 3);
        let out = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        assert_eq!(out.config.outputs(), 3);
        assert!((out.config.med(&g, &d).unwrap() - out.med).abs() < 1e-12);
        assert_eq!(out.round_meds.len(), BsSaParams::fast().search.rounds);
        assert!(out.mode_options.is_none());
    }

    #[test]
    fn bs_sa_is_deterministic_given_seed() {
        let (g, d) = problem(2, 6, 3);
        let a = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        let b = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        assert_eq!(a.config, b.config);
    }

    #[test]
    fn bto_normal_policy_records_options_and_modes() {
        let (g, d) = problem(3, 6, 3);
        let out = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::bto_normal_paper()).unwrap();
        let opts = out.mode_options.as_ref().expect("options recorded");
        assert_eq!(opts.len(), 3);
        for (i, o) in opts.iter().enumerate() {
            assert_eq!(o.bit, i);
            assert!(o.bto.is_some());
            assert!(o.nd.is_none());
            // BTO restricted search can never beat normal on error.
            assert!(o.bto.as_ref().unwrap().error >= o.normal.error - 1e-12);
        }
        // No ND bits can appear under BtoNormal.
        assert_eq!(out.config.mode_counts().2, 0);
    }

    #[test]
    fn bto_normal_nd_policy_can_use_all_modes() {
        let (g, d) = problem(4, 7, 4);
        let out = run_bs_sa(
            &g,
            &d,
            &BsSaParams::fast(),
            ArchPolicy::bto_normal_nd_paper(),
        )
        .unwrap();
        let opts = out.mode_options.as_ref().expect("options recorded");
        for o in opts {
            assert!(o.bto.is_some());
            assert!(o.nd.is_some());
        }
        let (bto, normal, nd) = out.config.mode_counts();
        assert_eq!(bto + normal + nd, 4);
    }

    #[test]
    fn choose_mode_implements_paper_rule() {
        use dalut_boolfn::Partition;
        use dalut_decomp::{AnyDecomp, BtoDecomp};
        let p = Partition::new(6, 0b000111).unwrap();
        let mk = |e: f64| {
            Setting::new(
                e,
                AnyDecomp::Bto(BtoDecomp::new(p, vec![false; p.cols()]).unwrap()),
            )
        };
        let normal = mk(10.0);
        // BTO within (1+delta): chosen under BtoNormal.
        let sel = choose_mode(
            ArchPolicy::BtoNormal { delta: 0.05 },
            &normal,
            Some(&mk(10.4)),
            None,
        );
        assert_eq!(sel.error, 10.4);
        // BTO too bad: normal stays.
        let sel = choose_mode(
            ArchPolicy::BtoNormal { delta: 0.05 },
            &normal,
            Some(&mk(11.0)),
            None,
        );
        assert_eq!(sel.error, 10.0);
        // ND much better than normal: ND chosen.
        let sel = choose_mode(
            ArchPolicy::BtoNormalNd {
                delta: 0.01,
                delta_prime: 0.1,
            },
            &normal,
            Some(&mk(10.05)),
            Some(&mk(8.0)),
        );
        assert_eq!(sel.error, 8.0);
        // ND only slightly better AND BTO close: BTO wins (power saving).
        let sel = choose_mode(
            ArchPolicy::BtoNormalNd {
                delta: 0.01,
                delta_prime: 0.1,
            },
            &normal,
            Some(&mk(10.05)),
            Some(&mk(9.5)),
        );
        assert_eq!(sel.error, 10.05);
        // Neither BTO close nor ND much better: normal.
        let sel = choose_mode(
            ArchPolicy::BtoNormalNd {
                delta: 0.01,
                delta_prime: 0.1,
            },
            &normal,
            Some(&mk(11.0)),
            Some(&mk(9.95)),
        );
        assert_eq!(sel.error, 10.0);
    }

    #[test]
    fn call_seed_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..6 {
            for k in 0..16 {
                for br in 0..4 {
                    assert!(seen.insert(call_seed(42, r, k, br)));
                }
            }
        }
    }

    #[test]
    fn beam_width_one_still_works() {
        let (g, d) = problem(5, 6, 2);
        let mut params = BsSaParams::fast();
        params.beam_width = 1;
        let out = run_bs_sa(&g, &d, &params, ArchPolicy::NormalOnly).unwrap();
        assert!(out.med.is_finite());
    }

    #[test]
    fn final_med_equals_last_round_med() {
        // Algorithm 1 replaces settings unconditionally in later rounds
        // (line 15), so the MED need not be monotone across rounds — but
        // the outcome's MED must be the last round's materialised MED.
        let (g, d) = problem(6, 7, 3);
        let out = run_bs_sa(&g, &d, &BsSaParams::fast(), ArchPolicy::NormalOnly).unwrap();
        let last = *out.round_meds.last().unwrap();
        assert!((out.med - last).abs() < 1e-12);
        for m in &out.round_meds {
            assert!(m.is_finite());
        }
    }
}
