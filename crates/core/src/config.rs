//! Per-bit architecture configuration produced by the searches and
//! consumed by the hardware models.

use dalut_boolfn::{BoolFnError, InputDistribution, TruthTable};
use dalut_decomp::{AnyDecomp, Setting};
use serde::{Deserialize, Serialize};

/// The operating mode of one approximate single-output LUT (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitMode {
    /// Bound-table-only: free table(s) clock-gated.
    Bto,
    /// Normal disjoint decomposition: one free table active.
    Normal,
    /// Non-disjoint decomposition: both free tables active.
    NonDisjoint,
}

/// Configuration of a single output bit: its decomposition (which implies
/// the routing-box setting and both tables' contents) and the error the
/// search expected from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitConfig {
    /// Output bit index (0-based, weight `2^bit`).
    pub bit: usize,
    /// The decomposition realised by this bit's tables.
    pub decomp: AnyDecomp,
    /// The MED the search attributed to the approximation when this
    /// setting was chosen.
    pub expected_error: f64,
}

impl BitConfig {
    /// The operating mode implied by the decomposition shape.
    pub fn mode(&self) -> BitMode {
        match self.decomp {
            AnyDecomp::Bto(_) => BitMode::Bto,
            AnyDecomp::Normal(_) => BitMode::Normal,
            AnyDecomp::NonDisjoint(_) => BitMode::NonDisjoint,
        }
    }

    /// Creates a bit configuration from a scored [`Setting`].
    pub fn from_setting(bit: usize, setting: Setting) -> Self {
        Self {
            bit,
            decomp: setting.decomp,
            expected_error: setting.error,
        }
    }
}

/// A complete approximate-LUT configuration: one decomposition per output
/// bit of an `n`-input / `m`-output function.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{InputDistribution, TruthTable};
/// use dalut_core::{ApproxLutBuilder, DaltaParams};
///
/// let g = TruthTable::from_fn(6, 3, |x| (x >> 3) ^ (x & 7)).unwrap();
/// let dist = InputDistribution::uniform(6).unwrap();
/// let outcome = ApproxLutBuilder::new(&g)
///     .distribution(dist)
///     .dalta(DaltaParams::fast())
///     .run()
///     .unwrap();
/// let approx = outcome.config.to_truth_table();
/// assert_eq!(approx.inputs(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxLutConfig {
    inputs: usize,
    outputs: usize,
    bits: Vec<BitConfig>,
}

impl ApproxLutConfig {
    /// Creates a configuration from per-bit configs.
    ///
    /// # Errors
    ///
    /// Returns an error unless there is exactly one config per output bit
    /// (in ascending order) and every decomposition is over `inputs`
    /// variables.
    pub fn new(inputs: usize, outputs: usize, bits: Vec<BitConfig>) -> Result<Self, BoolFnError> {
        if bits.len() != outputs {
            return Err(BoolFnError::DimensionMismatch(format!(
                "{} bit configs for {} output bits",
                bits.len(),
                outputs
            )));
        }
        for (i, bc) in bits.iter().enumerate() {
            if bc.bit != i {
                return Err(BoolFnError::DimensionMismatch(format!(
                    "bit config at position {i} is for bit {}",
                    bc.bit
                )));
            }
            if bc.decomp.partition().n() != inputs {
                return Err(BoolFnError::DimensionMismatch(format!(
                    "bit {} decomposition over {} inputs, expected {inputs}",
                    i,
                    bc.decomp.partition().n()
                )));
            }
        }
        Ok(Self {
            inputs,
            outputs,
            bits,
        })
    }

    /// Number of input bits `n`.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output bits `m`.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The per-bit configurations, ascending by bit.
    pub fn bits(&self) -> &[BitConfig] {
        &self.bits
    }

    /// Evaluates the approximate function on input `x`.
    pub fn eval(&self, x: u32) -> u32 {
        self.bits.iter().fold(0u32, |acc, bc| {
            acc | (u32::from(bc.decomp.eval_bit(x)) << bc.bit)
        })
    }

    /// Materialises the approximate function as a truth table.
    pub fn to_truth_table(&self) -> TruthTable {
        TruthTable::from_fn(self.inputs, self.outputs, |x| self.eval(x))
            .expect("config dimensions are valid by construction")
    }

    /// MED of this configuration against `target` under `dist`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn med(&self, target: &TruthTable, dist: &InputDistribution) -> Result<f64, BoolFnError> {
        dalut_boolfn::metrics::med(target, &self.to_truth_table(), dist)
    }

    /// Counts of output bits per mode: `(BTO, Normal, ND)` — the triple
    /// the paper annotates in Fig. 6.
    pub fn mode_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for bc in &self.bits {
            match bc.mode() {
                BitMode::Bto => c.0 += 1,
                BitMode::Normal => c.1 += 1,
                BitMode::NonDisjoint => c.2 += 1,
            }
        }
        c
    }

    /// Total LUT entries across all bits: `2^b` for each bound table plus
    /// `2^(n−b+1)` per active free table (two for ND bits; the paper's
    /// reconfigurable hardware always *instantiates* the tables — this
    /// counts the entries a non-reconfigurable realisation would store,
    /// the paper's headline compression metric versus the `m · 2^n` exact
    /// table).
    pub fn lut_entries(&self) -> usize {
        self.bits
            .iter()
            .map(|bc| {
                let p = bc.decomp.partition();
                let bound = 1usize << p.bound_size();
                let free = 1usize << (p.free_size() + 1);
                match bc.mode() {
                    BitMode::Bto => bound,
                    BitMode::Normal => bound + free,
                    // Each ND half's free table covers the same free set.
                    BitMode::NonDisjoint => bound + 2 * free,
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::Partition;
    use dalut_decomp::{BtoDecomp, DisjointDecomp, RowType};

    fn bto_bit(bit: usize, n: usize, mask: u32, pattern_bit: bool) -> BitConfig {
        let p = Partition::new(n, mask).unwrap();
        BitConfig {
            bit,
            decomp: AnyDecomp::Bto(BtoDecomp::new(p, vec![pattern_bit; p.cols()]).unwrap()),
            expected_error: 0.0,
        }
    }

    fn normal_bit(bit: usize, n: usize, mask: u32) -> BitConfig {
        let p = Partition::new(n, mask).unwrap();
        BitConfig {
            bit,
            decomp: AnyDecomp::Normal(
                DisjointDecomp::new(p, vec![true; p.cols()], vec![RowType::Pattern; p.rows()])
                    .unwrap(),
            ),
            expected_error: 0.0,
        }
    }

    #[test]
    fn eval_combines_bits() {
        let cfg = ApproxLutConfig::new(
            4,
            2,
            vec![bto_bit(0, 4, 0b0011, true), bto_bit(1, 4, 0b0011, false)],
        )
        .unwrap();
        for x in 0..16u32 {
            assert_eq!(cfg.eval(x), 0b01);
        }
        let tt = cfg.to_truth_table();
        assert_eq!(tt.outputs(), 2);
        assert_eq!(tt.eval(5), 1);
    }

    #[test]
    fn new_validates_bit_order_and_width() {
        // Wrong count.
        assert!(ApproxLutConfig::new(4, 2, vec![bto_bit(0, 4, 0b0011, true)]).is_err());
        // Wrong order.
        assert!(ApproxLutConfig::new(
            4,
            2,
            vec![bto_bit(1, 4, 0b0011, true), bto_bit(0, 4, 0b0011, true)]
        )
        .is_err());
        // Wrong input width.
        assert!(ApproxLutConfig::new(
            4,
            2,
            vec![bto_bit(0, 5, 0b00011, true), bto_bit(1, 4, 0b0011, true)]
        )
        .is_err());
    }

    #[test]
    fn mode_counts_and_entries() {
        let cfg = ApproxLutConfig::new(
            4,
            2,
            vec![bto_bit(0, 4, 0b0011, true), normal_bit(1, 4, 0b0111)],
        )
        .unwrap();
        assert_eq!(cfg.mode_counts(), (1, 1, 0));
        // Bit 0: BTO with b=2 -> 4 entries. Bit 1: b=3 -> 8 + 2^(1+1)=4.
        assert_eq!(cfg.lut_entries(), 4 + 12);
    }

    #[test]
    fn med_of_exact_config_is_zero() {
        // Build a config that exactly equals its target.
        let cfg = ApproxLutConfig::new(
            4,
            2,
            vec![bto_bit(0, 4, 0b0011, true), bto_bit(1, 4, 0b0011, false)],
        )
        .unwrap();
        let target = cfg.to_truth_table();
        let dist = InputDistribution::uniform(4).unwrap();
        assert_eq!(cfg.med(&target, &dist).unwrap(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ApproxLutConfig::new(
            4,
            2,
            vec![bto_bit(0, 4, 0b0011, true), normal_bit(1, 4, 0b0111)],
        )
        .unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ApproxLutConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
