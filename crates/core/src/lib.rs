//! # dalut-core
//!
//! The primary contribution of the DALUT paper (DATE 2023): the **BS-SA**
//! approximate-decomposition search (beam search over output bits +
//! simulated annealing over variable partitions), the **DALTA** baseline
//! it is compared against, per-bit **mode selection** for the two proposed
//! reconfigurable architectures (BTO-Normal and BTO-Normal-ND), and
//! accuracy–energy **trade-off sweeps**.
//!
//! The flow mirrors the paper; [`ApproxLutBuilder`] is the single
//! entrypoint, selecting between:
//!
//! 1. DALTA — baseline: for each output bit (MSB→LSB, `R` rounds)
//!    draw `P` random partitions, call `OptForPart` on each, keep the best
//!    greedily (§II-B).
//! 2. BS-SA — proposed: round 1 is a beam search keeping the
//!    `N_beam` best setting *sequences*, scoring candidates under the
//!    predictive LSB model (§III-B); rounds 2..R refine each bit with the
//!    SA-based [`find_best_settings`] (Algorithm 2) and apply the `δ`/`δ'`
//!    mode-selection rule of the requested [`ArchPolicy`] (§IV).
//! 3. [`mode_sweep`] — enumerate (#BTO, #Normal, #ND) allocations for the
//!    Fig. 6 accuracy–energy study.
//!
//! The crate is deterministic for a fixed seed when run single-threaded;
//! [`parallel::run_tasks`] distributes partition evaluations across
//! worker threads exactly like the paper's 44-thread setup distributes
//! `OptForPart` calls. Searches report progress through the [`observe`]
//! module's [`Observer`] API (builder method
//! [`ApproxLutBuilder::observer`]): the default [`NoopObserver`] is free,
//! while [`MetricsRecorder`] / [`JsonlTraceWriter`] sinks capture
//! per-phase metrics and JSONL traces.
//!
//! ## Example
//!
//! ```
//! use dalut_boolfn::TruthTable;
//! use dalut_core::{ApproxLutBuilder, ArchPolicy, BsSaParams};
//!
//! // A 10-bit squarer approximated with the BTO-Normal-ND architecture.
//! let target = TruthTable::from_fn(10, 8, |x| (x * x >> 12) & 0xFF).unwrap();
//! let outcome = ApproxLutBuilder::new(&target)
//!     .bs_sa(BsSaParams::fast())
//!     .policy(ArchPolicy::bto_normal_nd_paper())
//!     .run()
//!     .unwrap();
//! let (bto, normal, nd) = outcome.config.mode_counts();
//! assert_eq!(bto + normal + nd, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod beam;
pub mod budget;
pub mod checkpoint;
pub mod config;
pub mod dalta;
pub mod error;
pub mod estimate;
pub mod observe;
pub mod outcome;
pub mod parallel;
pub mod params;
pub mod pipeline;
pub mod sa;
pub mod spec;
pub mod tradeoff;
pub mod visited;

pub use analysis::{error_breakdown, BitErrorReport, ErrorBreakdown};
pub use budget::{BudgetTimer, CancelToken, RunBudget, Termination};
pub use checkpoint::{
    atomic_write, crc32, fingerprint, CheckpointStore, Degradation, LoadedCheckpoint,
    SweepSnapshot, WorkKey, WorkRecord,
};
pub use config::{ApproxLutConfig, BitConfig, BitMode};
pub use error::DalutError;
pub use estimate::{select_survivors, select_survivors_with_margin, EstimatorMode, ResourceScorer};
pub use observe::{
    CounterSnapshot, HistogramSnapshot, JsonlTraceWriter, MetricsRecorder, MetricsSnapshot,
    MultiObserver, NoopObserver, Observer, PhaseSnapshot, RecordingObserver, SearchEvent,
    TraceRecord,
};
pub use outcome::{BitModeOptions, SearchOutcome};
pub use params::{ArchPolicy, BsSaParams, DaltaParams, SearchParams};
pub use pipeline::{Algorithm, ApproxLutBuilder, SearchConfig};
pub use sa::{find_best_settings, DecompMode};
pub use spec::{
    fnv1a_128, fnv1a_64, BudgetSpec, DistributionSpec, FunctionFingerprint, FunctionResolver,
    FunctionSource, JobSpec, NoResolver, JOBSPEC_SCHEMA,
};
pub use tradeoff::{mode_sweep, pareto_front, TradeoffPoint};
