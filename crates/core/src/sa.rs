//! Simulated-annealing `FindBestSettings` (paper Algorithm 2).
//!
//! Given the per-input cost arrays for one output bit, searches the space
//! of variable partitions with SA over the swap neighbourhood, calling the
//! `OptForPart` kernel for every newly visited partition, and returns the
//! top `N_beam` decomposition settings. Several SA processes can run
//! against one shared visited set `Φ`, as in the paper's implementation.

use crate::budget::BudgetTimer;
use crate::error::DalutError;
use crate::observe::{observe_kernel, Observer, SearchEvent, NOOP};
use crate::parallel::try_run_tasks;
use crate::params::BsSaParams;

use crate::visited::{TopSettings, VisitedSet};
use dalut_boolfn::Partition;
use dalut_decomp::{opt_for_part, opt_for_part_bto, opt_for_part_nd, AnyDecomp, BitCosts, Setting};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Test-only fault hook: arms a number of injected panics against the
/// kernel evaluations of one specific cost table (identified by address,
/// so concurrently running tests cannot consume each other's fuse). Fires
/// inside the worker-task body — exactly where a real kernel fault would
/// land — to exercise the panic-isolation path.
#[cfg(test)]
pub(crate) mod inject {
    use dalut_decomp::BitCosts;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static TARGET: AtomicUsize = AtomicUsize::new(0);
    static SHOTS: AtomicUsize = AtomicUsize::new(0);

    /// Arms `shots` panics against worker tasks evaluating `costs`.
    pub(crate) fn arm(costs: &BitCosts, shots: usize) {
        SHOTS.store(shots, Ordering::SeqCst);
        TARGET.store(std::ptr::from_ref(costs) as usize, Ordering::SeqCst);
    }

    /// Panics if armed against `costs` and shots remain.
    pub(crate) fn maybe_fire(costs: &BitCosts) {
        if TARGET.load(Ordering::SeqCst) == std::ptr::from_ref(costs) as usize
            && SHOTS
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
        {
            panic!("injected kernel panic (test hook)");
        }
    }
}

/// Which decomposition shape `FindBestSettings` optimises (the operating
/// mode the resulting setting targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DecompMode {
    /// Normal disjoint decomposition.
    Normal,
    /// Bound-table-only (type vector forced to all 3s).
    Bto,
    /// Non-disjoint with one shared bound bit.
    NonDisjoint,
}

/// Evaluates one partition under the requested mode.
fn optimize_partition(
    costs: &BitCosts,
    partition: Partition,
    mode: DecompMode,
    params: &BsSaParams,
    rng: &mut StdRng,
) -> Setting {
    let opt = params.search.opt_params();
    // Invariant, not fallible: every partition evaluated here is drawn over
    // the same n the cost table was built for (checked at search entry), so
    // the kernels' width checks cannot fire.
    const WIDTHS_OK: &str = "partition width validated at search entry";
    match mode {
        DecompMode::Normal => {
            let (e, d) = opt_for_part(costs, partition, opt, rng).expect(WIDTHS_OK);
            Setting::new(e, AnyDecomp::Normal(d))
        }
        DecompMode::Bto => {
            let (e, d) = opt_for_part_bto(costs, partition).expect(WIDTHS_OK);
            Setting::new(e, AnyDecomp::Bto(d))
        }
        DecompMode::NonDisjoint => {
            match opt_for_part_nd(costs, partition, opt, rng).expect(WIDTHS_OK) {
                Some((e, d)) => Setting::new(e, AnyDecomp::NonDisjoint(d)),
                // A single-variable bound set admits no shared bit; fall back
                // to the normal decomposition.
                None => {
                    let (e, d) = opt_for_part(costs, partition, opt, rng).expect(WIDTHS_OK);
                    Setting::new(e, AnyDecomp::Normal(d))
                }
            }
        }
    }
}

/// The state of one SA process (the loop body of Algorithm 2). Chains
/// are *stepped* one neighbourhood batch at a time so that several chains
/// interleave fairly around the shared visited set — matching the paper's
/// concurrently running SA processes even on one thread.
#[derive(Debug)]
struct SaChain {
    rng: StdRng,
    omega: Partition,
    e_omega: f64,
    tau: f64,
    stall: usize,
    done: bool,
}

impl SaChain {
    /// Initialises the chain: draws and evaluates its starting partition
    /// (Algorithm 2, lines 1-3).
    #[allow(clippy::too_many_arguments)]
    fn new(
        costs: &BitCosts,
        n: usize,
        mode: DecompMode,
        params: &BsSaParams,
        phi: &VisitedSet,
        tops: &TopSettings,
        seed: u64,
        start: Option<Partition>,
        obs: &dyn Observer,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let omega =
            start.unwrap_or_else(|| Partition::random(n, params.search.bound_size, &mut rng));
        let first = observe_kernel(obs, mode, || {
            optimize_partition(costs, omega, mode, params, &mut rng)
        });
        let e_omega = first.error;
        obs.on_event(&SearchEvent::SaChainStarted { error: e_omega });
        phi.insert(omega.bound_mask(), first.error);
        tops.offer(first);
        Self {
            rng,
            omega,
            e_omega,
            tau: params.initial_temp,
            stall: 0,
            done: false,
        }
    }

    /// Performs one iteration of the main loop (lines 5-19): evaluates one
    /// neighbourhood batch, moves per the SA acceptance rule, cools down.
    ///
    /// The `N_nb` `OptForPart` calls of the batch are independent, so the
    /// neighbours not already in `Φ` are fanned out over `threads` workers.
    /// Each pending neighbour gets a dedicated RNG seeded from this chain's
    /// stream *in neighbour order before the fan-out*, and results are
    /// merged back into `Φ` in that same order — so the chain consumes its
    /// RNG identically regardless of `threads`, and the whole step is a
    /// deterministic function of the chain state.
    ///
    /// Each neighbour evaluation runs panic-isolated: a task that dies is
    /// recorded on `timer` and its neighbour simply drops out of this
    /// batch; the surviving evaluations proceed normally.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        costs: &BitCosts,
        mode: DecompMode,
        params: &BsSaParams,
        phi: &VisitedSet,
        tops: &TopSettings,
        threads: usize,
        timer: &BudgetTimer,
        obs: &dyn Observer,
    ) {
        if self.done || phi.len() >= params.partition_limit {
            self.done = true;
            return;
        }
        let neighbors = self.omega.random_neighbors(params.neighbors, &mut self.rng);
        let mut errs: Vec<Option<f64>> = neighbors
            .iter()
            .map(|nb| phi.get(nb.bound_mask()))
            .collect();
        let cache_hits = errs.iter().filter(|e| e.is_some()).count();
        let mut pending: Vec<(usize, Partition, u64)> = Vec::new();
        for (i, nb) in neighbors.iter().enumerate() {
            if errs[i].is_none() {
                pending.push((i, *nb, self.rng.random()));
            }
        }
        let settings = try_run_tasks(
            pending
                .iter()
                .map(|&(_, nb, seed)| {
                    move || {
                        #[cfg(test)]
                        inject::maybe_fire(costs);
                        let mut rng = StdRng::seed_from_u64(seed);
                        observe_kernel(obs, mode, || {
                            optimize_partition(costs, nb, mode, params, &mut rng)
                        })
                    }
                })
                .collect(),
            threads,
        );
        let mut changed = false;
        let mut failed = 0usize;
        for (&(i, nb, _), slot) in pending.iter().zip(settings) {
            match slot {
                Ok(s) => {
                    let e = s.error;
                    if phi.insert(nb.bound_mask(), e) {
                        changed = true;
                    }
                    tops.offer(s);
                    errs[i] = Some(e);
                }
                // The neighbour's evaluation panicked: note it and let the
                // batch continue without this neighbour (it stays out of Φ
                // and can be re-drawn later).
                Err(_) => {
                    timer.note_task_failure();
                    failed += 1;
                }
            }
        }
        obs.on_event(&SearchEvent::NeighbourBatch {
            requested: neighbors.len(),
            cache_hits,
            evaluated: pending.len() - failed,
            failed,
            visited: phi.len(),
        });
        let mut best_nb: Option<(Partition, f64)> = None;
        for (nb, e_nb) in neighbors.iter().zip(errs) {
            // A `None` here means the neighbour's worker task panicked.
            let Some(e_nb) = e_nb else { continue };
            if best_nb.is_none_or(|(_, be)| e_nb < be) {
                best_nb = Some((*nb, e_nb));
            }
        }
        if let Some((nb, e_nb)) = best_nb {
            if e_nb <= self.e_omega {
                self.omega = nb;
                self.e_omega = e_nb;
            } else {
                let e_star = tops
                    .best_error()
                    .unwrap_or(self.e_omega)
                    .max(f64::MIN_POSITIVE);
                let accept = ((self.e_omega - e_nb) / (self.tau * e_star)).exp();
                if self.rng.random::<f64>() < accept {
                    self.omega = nb;
                    self.e_omega = e_nb;
                }
            }
        }
        self.tau *= params.alpha;
        obs.on_event(&SearchEvent::TemperatureStep {
            temperature: self.tau,
        });
        self.stall = if changed { 0 } else { self.stall + 1 };
        if self.stall >= params.stall_limit {
            self.done = true;
        }
    }
}

/// `FindBestSettings(G, Ĝ, k, N_beam)` (paper Algorithm 2): returns up to
/// `beam` best decomposition settings for the output bit whose costs are
/// given, searching partitions with `params.sa_processes` SA chains that
/// share one visited set.
///
/// When `start` is given, the first chain starts its walk from that
/// partition instead of a random one — the later optimisation rounds pass
/// the bit's incumbent partition so refinement never loses track of the
/// current solution's neighbourhood.
///
/// The thread budget is split across two levels: up to
/// `min(threads, chains)` chains step concurrently, and each stepping
/// chain fans its neighbourhood batch out over the remaining budget
/// (`threads / chain workers`). A single chain therefore still uses the
/// whole budget — with `sa_processes = 1` and `threads = 4`, the four
/// (or five) neighbour evaluations of each batch run on four workers.
///
/// With `params.search.threads <= 1` everything runs on the calling
/// thread and the result is a deterministic function of `seed`. With one
/// chain the result is the *same* deterministic function for any thread
/// count (per-neighbour RNG streams are pre-seeded and merged in
/// neighbour order); only multiple chains racing on the shared `Φ` make
/// the outcome schedule-dependent.
///
/// # Panics
///
/// Panics if `costs.inputs != n` or `params.search.bound_size >= n`; use
/// [`find_best_settings_budgeted`] for a non-panicking entry point.
pub fn find_best_settings(
    costs: &BitCosts,
    n: usize,
    mode: DecompMode,
    params: &BsSaParams,
    beam: usize,
    seed: u64,
    start: Option<Partition>,
) -> Vec<Setting> {
    let timer = BudgetTimer::unlimited();
    find_best_settings_budgeted(costs, n, mode, params, beam, seed, start, &timer)
        .expect("invalid search parameters")
}

/// [`find_best_settings`] under an execution budget.
///
/// `timer` is consulted at chain-step boundaries only, so a run that
/// finishes within its budget consumes its RNG streams — and returns —
/// exactly like the unbudgeted version. When the budget trips mid-search,
/// the settings gathered so far are returned (never empty: every chain
/// evaluates its starting partition before the budget is first checked).
/// Worker-task panics are recorded on `timer` and the affected neighbours
/// are dropped from their batch; ask `timer.termination()` for the
/// combined verdict.
///
/// # Errors
///
/// [`DalutError::InvalidParams`] if `costs.inputs != n` or the bound size
/// does not satisfy `0 < b < n`.
#[allow(clippy::too_many_arguments)]
pub fn find_best_settings_budgeted(
    costs: &BitCosts,
    n: usize,
    mode: DecompMode,
    params: &BsSaParams,
    beam: usize,
    seed: u64,
    start: Option<Partition>,
    timer: &BudgetTimer,
) -> Result<Vec<Setting>, DalutError> {
    find_best_settings_observed(costs, n, mode, params, beam, seed, start, timer, &NOOP)
}

/// [`find_best_settings_budgeted`] with an [`Observer`] attached: emits
/// `SaChainStarted` / `NeighbourBatch` / `TemperatureStep` /
/// `KernelInvocation` / `BudgetTick` events as the chains run. With
/// `threads <= 1` the event order is deterministic; parallel chains and
/// fanned-out neighbour batches interleave their events.
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_best_settings_observed(
    costs: &BitCosts,
    n: usize,
    mode: DecompMode,
    params: &BsSaParams,
    beam: usize,
    seed: u64,
    start: Option<Partition>,
    timer: &BudgetTimer,
    obs: &dyn Observer,
) -> Result<Vec<Setting>, DalutError> {
    if costs.inputs != n {
        return Err(DalutError::InvalidParams(format!(
            "cost table is over {} inputs but the search target has {n}",
            costs.inputs
        )));
    }
    if params.search.bound_size == 0 || params.search.bound_size >= n {
        return Err(DalutError::InvalidParams(format!(
            "bound size must satisfy 0 < b < n (got b = {}, n = {n})",
            params.search.bound_size
        )));
    }
    let phi = VisitedSet::new();
    let tops = TopSettings::new(beam.max(1));
    let chains = params.sa_processes.max(1);
    let mut states: Vec<SaChain> = (0..chains)
        .map(|c| {
            SaChain::new(
                costs,
                n,
                mode,
                params,
                &phi,
                &tops,
                seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1)),
                if c == 0 { start } else { None },
                obs,
            )
        })
        .collect();
    // Round-robin stepping: every live chain advances one neighbourhood
    // batch per sweep, all sharing Φ — the fair interleaving the paper
    // gets from running its 10 SA processes concurrently. The thread
    // budget splits across chain workers first; whatever is left over
    // fans each chain's neighbourhood batch out inside `step`.
    let threads = params.search.threads.max(1);
    let chain_workers = threads.min(chains);
    let batch_threads = (threads / chain_workers).max(1);
    'sweeps: while states.iter().any(|st| !st.done) && phi.len() < params.partition_limit {
        if timer.exhausted() {
            break;
        }
        if chain_workers <= 1 {
            for st in states.iter_mut().filter(|st| !st.done) {
                if timer.exhausted() {
                    break 'sweeps;
                }
                st.step(costs, mode, params, &phi, &tops, batch_threads, timer, obs);
                timer.count_iteration();
                obs.on_event(&SearchEvent::BudgetTick {
                    iterations: timer.iterations(),
                });
            }
        } else {
            let chunk = states.len().div_ceil(chain_workers);
            crossbeam::scope(|scope| {
                for slice in states.chunks_mut(chunk) {
                    let (phi, tops) = (&phi, &tops);
                    scope.spawn(move |_| {
                        for st in slice.iter_mut().filter(|st| !st.done) {
                            if timer.exhausted() {
                                break;
                            }
                            // A chain whose step dies outside the isolated
                            // neighbour tasks is retired; its settings so
                            // far stay in `tops` and the other chains keep
                            // searching.
                            if catch_unwind(AssertUnwindSafe(|| {
                                st.step(costs, mode, params, phi, tops, batch_threads, timer, obs);
                            }))
                            .is_err()
                            {
                                timer.note_task_failure();
                                st.done = true;
                            }
                            timer.count_iteration();
                            obs.on_event(&SearchEvent::BudgetTick {
                                iterations: timer.iterations(),
                            });
                        }
                    });
                }
            })
            .expect("SA worker panicked outside a chain step");
        }
    }
    Ok(tops.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::builder::random_table;
    use dalut_boolfn::{InputDistribution, TruthTable};
    use dalut_decomp::{bit_costs, column_error, LsbFill};

    fn costs_for(g: &TruthTable, bit: usize) -> BitCosts {
        let dist = InputDistribution::uniform(g.inputs()).unwrap();
        bit_costs(g, g, bit, &dist, LsbFill::FromApprox).unwrap()
    }

    fn table(seed: u64) -> TruthTable {
        let mut rng = StdRng::seed_from_u64(seed);
        random_table(7, 4, &mut rng).unwrap()
    }

    #[test]
    fn returns_settings_sorted_and_bounded() {
        let g = table(1);
        let costs = costs_for(&g, 2);
        let params = BsSaParams::fast();
        let out = find_best_settings(&costs, 7, DecompMode::Normal, &params, 3, 7, None);
        assert!(!out.is_empty());
        assert!(out.len() <= 3);
        for w in out.windows(2) {
            assert!(w[0].error <= w[1].error);
        }
        // Reported errors are faithful to the materialised columns.
        for s in &out {
            let col = s.decomp.to_bit_column();
            assert!((column_error(&costs, &col) - s.error).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_single_thread() {
        let g = table(2);
        let costs = costs_for(&g, 1);
        let mut params = BsSaParams::fast();
        params.sa_processes = 3; // still sequential with threads = 1
        let a = find_best_settings(&costs, 7, DecompMode::Normal, &params, 2, 11, None);
        let b = find_best_settings(&costs, 7, DecompMode::Normal, &params, 2, 11, None);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let g = table(3);
        let costs = costs_for(&g, 0);
        let params = BsSaParams::fast();
        let a = find_best_settings(&costs, 7, DecompMode::Normal, &params, 1, 1, None);
        let b = find_best_settings(&costs, 7, DecompMode::Normal, &params, 1, 2, None);
        // Both found something; they need not be identical but must both
        // be valid settings.
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn bto_mode_yields_bto_settings() {
        let g = table(4);
        let costs = costs_for(&g, 3);
        let params = BsSaParams::fast();
        let out = find_best_settings(&costs, 7, DecompMode::Bto, &params, 2, 5, None);
        for s in &out {
            assert!(matches!(s.decomp, AnyDecomp::Bto(_)));
        }
    }

    #[test]
    fn nd_mode_yields_nd_settings_and_beats_bto() {
        let g = table(5);
        let costs = costs_for(&g, 2);
        let params = BsSaParams::fast();
        let nd = find_best_settings(&costs, 7, DecompMode::NonDisjoint, &params, 1, 5, None);
        let bto = find_best_settings(&costs, 7, DecompMode::Bto, &params, 1, 5, None);
        assert!(matches!(nd[0].decomp, AnyDecomp::NonDisjoint(_)));
        // ND searches a strict superset of BTO's expressive power per
        // partition; across the same search budget it should not be worse
        // on this seed.
        assert!(nd[0].error <= bto[0].error + 1e-9);
    }

    #[test]
    fn respects_partition_limit() {
        let g = table(6);
        let costs = costs_for(&g, 1);
        let mut params = BsSaParams::fast();
        params.partition_limit = 3;
        params.stall_limit = usize::MAX; // only the limit stops us
        let out = find_best_settings(&costs, 7, DecompMode::Normal, &params, 10, 3, None);
        // We can overshoot by at most one neighbourhood batch per chain.
        assert!(out.len() <= 3 + params.neighbors);
    }

    #[test]
    fn single_chain_fanout_is_thread_count_invariant() {
        // One chain fans its neighbourhood batch out over the whole thread
        // budget; per-neighbour RNG streams are pre-seeded and merged in
        // neighbour order, so the result must not depend on thread count.
        let g = table(8);
        let costs = costs_for(&g, 1);
        let mut params = BsSaParams::fast();
        params.sa_processes = 1;
        params.search.threads = 1;
        let a = find_best_settings(&costs, 7, DecompMode::Normal, &params, 3, 21, None);
        params.search.threads = 4;
        let b = find_best_settings(&costs, 7, DecompMode::Normal, &params, 3, 21, None);
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_budget_still_returns_valid_settings() {
        use crate::budget::{RunBudget, Termination};
        let g = table(9);
        let costs = costs_for(&g, 0);
        let params = BsSaParams::fast();
        // A budget that is spent before the search starts: the chains
        // still evaluate their starting partitions, so the result is a
        // non-empty set of faithful settings.
        let timer =
            BudgetTimer::new(&RunBudget::unlimited().with_deadline(std::time::Duration::ZERO));
        let out =
            find_best_settings_budgeted(&costs, 7, DecompMode::Normal, &params, 3, 7, None, &timer)
                .unwrap();
        assert!(!out.is_empty());
        assert_eq!(timer.termination(), Termination::DeadlineExceeded);
        for s in &out {
            let col = s.decomp.to_bit_column();
            assert!((column_error(&costs, &col) - s.error).abs() < 1e-12);
        }
    }

    #[test]
    fn iteration_cap_bounds_the_run() {
        use crate::budget::{RunBudget, Termination};
        let g = table(6);
        let costs = costs_for(&g, 2);
        let mut params = BsSaParams::fast();
        params.stall_limit = usize::MAX;
        params.partition_limit = usize::MAX;
        let timer = BudgetTimer::new(&RunBudget::unlimited().with_max_iterations(2));
        let out =
            find_best_settings_budgeted(&costs, 7, DecompMode::Normal, &params, 5, 3, None, &timer)
                .unwrap();
        assert!(!out.is_empty());
        assert_eq!(timer.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run_exactly() {
        use crate::budget::{RunBudget, Termination};
        let g = table(2);
        let costs = costs_for(&g, 1);
        let mut params = BsSaParams::fast();
        params.sa_processes = 3;
        let plain = find_best_settings(&costs, 7, DecompMode::Normal, &params, 2, 11, None);
        let timer = BudgetTimer::new(
            &RunBudget::unlimited()
                .with_deadline(std::time::Duration::from_secs(3600))
                .with_max_iterations(u64::MAX),
        );
        let budgeted = find_best_settings_budgeted(
            &costs,
            7,
            DecompMode::Normal,
            &params,
            2,
            11,
            None,
            &timer,
        )
        .unwrap();
        assert_eq!(plain, budgeted);
        assert_eq!(timer.termination(), Termination::Completed);
    }

    #[test]
    fn cancellation_stops_the_search_with_best_so_far() {
        use crate::budget::{CancelToken, RunBudget, Termination};
        let g = table(3);
        let costs = costs_for(&g, 1);
        let params = BsSaParams::fast();
        let token = CancelToken::new();
        token.cancel(); // cancelled before the search even starts
        let timer = BudgetTimer::new(&RunBudget::unlimited().with_cancel(&token));
        let out =
            find_best_settings_budgeted(&costs, 7, DecompMode::Normal, &params, 2, 5, None, &timer)
                .unwrap();
        assert!(!out.is_empty());
        assert_eq!(timer.termination(), Termination::Cancelled);
    }

    #[test]
    fn injected_task_panic_is_isolated_and_reported() {
        use crate::budget::Termination;
        let g = table(10);
        let costs = costs_for(&g, 1);
        let mut params = BsSaParams::fast();
        params.sa_processes = 1;
        params.search.threads = 4; // neighbour batches fan out over workers
        let timer = BudgetTimer::unlimited();
        inject::arm(&costs, 3);
        let out = find_best_settings_budgeted(
            &costs,
            7,
            DecompMode::Normal,
            &params,
            3,
            13,
            None,
            &timer,
        )
        .unwrap();
        assert_eq!(timer.termination(), Termination::TaskFailed);
        // The surviving evaluations still produced faithful settings.
        assert!(!out.is_empty());
        for s in &out {
            let col = s.decomp.to_bit_column();
            assert!((column_error(&costs, &col) - s.error).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_params_are_typed_errors_not_panics() {
        use crate::error::DalutError;
        let g = table(1);
        let costs = costs_for(&g, 0);
        let params = BsSaParams::fast();
        let timer = BudgetTimer::unlimited();
        // Width mismatch: the cost table is over 7 inputs, not 8.
        let r =
            find_best_settings_budgeted(&costs, 8, DecompMode::Normal, &params, 1, 1, None, &timer);
        assert!(matches!(r, Err(DalutError::InvalidParams(_))));
        // Degenerate bound size.
        let mut bad = BsSaParams::fast();
        bad.search.bound_size = 7;
        let r =
            find_best_settings_budgeted(&costs, 7, DecompMode::Normal, &bad, 1, 1, None, &timer);
        assert!(matches!(r, Err(DalutError::InvalidParams(_))));
    }

    #[test]
    fn multi_chain_multi_thread_still_valid() {
        let g = table(7);
        let costs = costs_for(&g, 2);
        let mut params = BsSaParams::fast();
        params.sa_processes = 4;
        params.search.threads = 4;
        let out = find_best_settings(&costs, 7, DecompMode::Normal, &params, 3, 9, None);
        assert!(!out.is_empty());
        for s in &out {
            let col = s.decomp.to_bit_column();
            assert!((column_error(&costs, &col) - s.error).abs() < 1e-12);
        }
    }
}
