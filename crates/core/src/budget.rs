//! Execution budgets for the search algorithms: wall-clock deadlines,
//! iteration caps, and cooperative cancellation.
//!
//! A [`RunBudget`] describes *how long* a search may run; a
//! [`BudgetTimer`] is the per-run instrument the search loops consult at
//! their iteration boundaries. Budget checks are placed **between**
//! iterations, never inside them, so a budgeted run consumes its RNG
//! streams exactly like an unbudgeted one — a run that completes within
//! its budget is byte-identical to the same seed run without a budget.
//!
//! When a budget trips, searches stop early and return their best
//! solution so far, tagged with a [`Termination`] describing why.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle.
///
/// Clone the token, hand one clone to the search (via
/// [`RunBudget::with_cancel`]) and keep the other; calling
/// [`cancel`](CancelToken::cancel) from any thread makes the search stop
/// at its next iteration boundary and return best-so-far with
/// [`Termination::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Limits on one search run. The default budget is unlimited.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock limit measured from search entry.
    pub deadline: Option<Duration>,
    /// Cap on search iterations (SA chain-steps for
    /// `find_best_settings`, plus per-bit optimisation steps for the
    /// DALTA baseline and the beam search — one shared counter).
    pub max_iterations: Option<u64>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
}

impl RunBudget {
    /// A budget with no limits (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets an iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, cap: u64) -> Self {
        self.max_iterations = Some(cap);
        self
    }

    /// Attaches a cancellation token (store a clone, keep the original).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// True if this budget can never trip.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iterations.is_none() && self.cancel.is_none()
    }
}

/// Why a search returned.
///
/// Ordering encodes reporting precedence: when several causes coincide,
/// the highest variant wins (`Cancelled` > `DeadlineExceeded` >
/// `TaskFailed` > `Completed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum Termination {
    /// The search ran to its natural end.
    #[default]
    Completed,
    /// One or more worker tasks panicked; the search completed with the
    /// surviving results.
    TaskFailed,
    /// The wall-clock deadline or the iteration cap was exhausted; the
    /// outcome is the best solution found so far.
    DeadlineExceeded,
    /// The cancel token fired; the outcome is the best solution so far.
    Cancelled,
}

impl Termination {
    /// True for any termination other than [`Termination::Completed`].
    #[must_use]
    pub fn is_early(self) -> bool {
        self != Self::Completed
    }
}

// Trip states recorded by `BudgetTimer::exhausted`.
const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_CANCELLED: u8 = 2;

/// The per-run instrument searches consult at iteration boundaries.
///
/// Shared by reference across worker threads; all state is atomic.
#[derive(Debug)]
pub struct BudgetTimer {
    start: Instant,
    deadline: Option<Duration>,
    max_iterations: Option<u64>,
    cancel: Option<CancelToken>,
    iterations: AtomicU64,
    tripped: AtomicU8,
    task_failed: AtomicBool,
}

impl BudgetTimer {
    /// Starts the clock on `budget`.
    #[must_use]
    pub fn new(budget: &RunBudget) -> Self {
        Self {
            start: Instant::now(),
            deadline: budget.deadline,
            max_iterations: budget.max_iterations,
            cancel: budget.cancel.clone(),
            iterations: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
            task_failed: AtomicBool::new(false),
        }
    }

    /// A timer that never trips.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::new(&RunBudget::unlimited())
    }

    /// Counts one completed search iteration.
    pub fn count_iteration(&self) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// Iterations counted so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Checks the budget at an iteration boundary. Returns `true` (and
    /// latches the trip cause) once the run must stop.
    pub fn exhausted(&self) -> bool {
        if self.tripped.load(Ordering::Acquire) != TRIP_NONE {
            return true;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.trip(TRIP_CANCELLED);
            return true;
        }
        let over_deadline = self.deadline.is_some_and(|d| self.start.elapsed() >= d);
        let over_iterations = self
            .max_iterations
            .is_some_and(|cap| self.iterations.load(Ordering::Relaxed) >= cap);
        if over_deadline || over_iterations {
            self.trip(TRIP_DEADLINE);
            return true;
        }
        false
    }

    /// Records that a worker task panicked (the run keeps going with the
    /// surviving results).
    pub fn note_task_failure(&self) {
        self.task_failed.store(true, Ordering::Release);
    }

    /// True once [`note_task_failure`](Self::note_task_failure) was called.
    #[must_use]
    pub fn any_task_failed(&self) -> bool {
        self.task_failed.load(Ordering::Acquire)
    }

    /// Wall-clock time since the timer started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The [`Termination`] describing this run, by precedence: a latched
    /// cancellation beats a latched deadline/iteration trip, which beats a
    /// recorded task failure, which beats clean completion.
    #[must_use]
    pub fn termination(&self) -> Termination {
        match self.tripped.load(Ordering::Acquire) {
            TRIP_CANCELLED => Termination::Cancelled,
            TRIP_DEADLINE => Termination::DeadlineExceeded,
            _ if self.any_task_failed() => Termination::TaskFailed,
            _ => Termination::Completed,
        }
    }

    fn trip(&self, cause: u8) {
        // Precedence: never downgrade a latched cause (fetch_max keeps the
        // strongest observed trip).
        self.tripped.fetch_max(cause, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_timer_never_trips() {
        let t = BudgetTimer::unlimited();
        for _ in 0..1000 {
            t.count_iteration();
        }
        assert!(!t.exhausted());
        assert_eq!(t.termination(), Termination::Completed);
    }

    #[test]
    fn iteration_cap_trips_as_deadline_exceeded() {
        let t = BudgetTimer::new(&RunBudget::unlimited().with_max_iterations(3));
        assert!(!t.exhausted());
        for _ in 0..3 {
            t.count_iteration();
        }
        assert!(t.exhausted());
        assert_eq!(t.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let t = BudgetTimer::new(&RunBudget::unlimited().with_deadline(Duration::ZERO));
        assert!(t.exhausted());
        assert_eq!(t.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn cancel_token_reaches_the_timer() {
        let token = CancelToken::new();
        let t = BudgetTimer::new(&RunBudget::unlimited().with_cancel(&token));
        assert!(!t.exhausted());
        token.cancel();
        assert!(t.exhausted());
        assert_eq!(t.termination(), Termination::Cancelled);
    }

    #[test]
    fn cancellation_outranks_deadline_and_task_failure() {
        let token = CancelToken::new();
        token.cancel();
        let t = BudgetTimer::new(
            &RunBudget::unlimited()
                .with_deadline(Duration::ZERO)
                .with_cancel(&token),
        );
        t.note_task_failure();
        assert!(t.exhausted());
        assert_eq!(t.termination(), Termination::Cancelled);
    }

    #[test]
    fn task_failure_alone_still_completes_with_task_failed() {
        let t = BudgetTimer::unlimited();
        t.note_task_failure();
        assert!(!t.exhausted());
        assert_eq!(t.termination(), Termination::TaskFailed);
    }

    #[test]
    fn trip_cause_is_latched_not_recomputed() {
        // A cancel arriving *after* a deadline trip must not rewrite
        // history... but precedence says Cancelled wins if both latched.
        let token = CancelToken::new();
        let t = BudgetTimer::new(
            &RunBudget::unlimited()
                .with_deadline(Duration::ZERO)
                .with_cancel(&token),
        );
        assert!(t.exhausted());
        assert_eq!(t.termination(), Termination::DeadlineExceeded);
        // The deadline trip latched first; a later cancel is not observed
        // by `exhausted` (already tripped), so the cause stays.
        token.cancel();
        assert!(t.exhausted());
        assert_eq!(t.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn default_budget_is_unlimited() {
        assert!(RunBudget::default().is_unlimited());
        assert!(!RunBudget::unlimited().with_max_iterations(1).is_unlimited());
    }

    #[test]
    fn termination_serde_round_trips_and_defaults() {
        assert_eq!(Termination::default(), Termination::Completed);
        assert!(Termination::Cancelled.is_early());
        assert!(!Termination::Completed.is_early());
        assert!(Termination::Cancelled > Termination::DeadlineExceeded);
        assert!(Termination::DeadlineExceeded > Termination::TaskFailed);
        assert!(Termination::TaskFailed > Termination::Completed);
    }
}
