//! Crash-safe persistence for long sweeps: a versioned, checksummed,
//! double-buffered [`CheckpointStore`] plus the snapshot types the bench
//! supervisor records between work items.
//!
//! ## Durability model
//!
//! Every write goes through [`atomic_write`]: the bytes land in a
//! temporary sibling file, the file is fsynced, and only then renamed
//! over the destination (with a best-effort directory fsync), so a crash
//! at any instant leaves either the complete old file or the complete new
//! file — never a torn one.
//!
//! Checkpoints are double-buffered across two slot files (`slot_a.ckpt`,
//! `slot_b.ckpt`). Each save writes the slot *not* holding the newest
//! good generation, so the previous checkpoint survives until the new one
//! is durable. Each slot carries a JSON envelope with a magic string, a
//! format version, a monotonically increasing generation number and a
//! CRC-32 over the serialised payload; [`CheckpointStore::load`] verifies
//! all four and silently falls back to the other slot when the newest one
//! is truncated, bit-flipped or otherwise unparseable.
//!
//! ## Snapshot types
//!
//! A sweep is a list of independent work items, each identified by a
//! stable [`WorkKey`] (benchmark × architecture × seed × scale ×
//! configuration fingerprint). The supervisor records a
//! [`WorkRecord`] per finished item inside a [`SweepSnapshot`]; a resumed
//! run skips items whose key already appears completed and replays the
//! rest. Results are stored inline, so resuming never recomputes a
//! finished item.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic string identifying a DALUT checkpoint envelope.
const MAGIC: &str = "dalut-checkpoint";
/// Envelope format version; bump on any incompatible layout change.
const VERSION: u32 = 1;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — implemented locally so corruption
// detection does not pull in a dependency.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`; the checksum guarding checkpoint payloads.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a hash of a string: the stable fingerprint for configuration
/// parameters inside a [`WorkKey`] and for whole-sweep fingerprints.
///
/// A thin delegate to [`fnv1a_64`](crate::spec::fnv1a_64); the FNV
/// machinery itself lives in [`spec`](crate::spec), where the 128-bit
/// variant backs [`FunctionFingerprint`](crate::FunctionFingerprint).
#[must_use]
pub fn fingerprint(s: &str) -> u64 {
    crate::spec::fnv1a_64(s.as_bytes())
}

// ---------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` crash-safely: temp file → fsync → rename,
/// plus a best-effort fsync of the parent directory. Missing parent
/// directories are created first. A crash at any point leaves either the
/// old file or the new one, never a torn mixture.
///
/// # Errors
///
/// Propagates I/O errors from directory creation, the write, the fsync
/// or the rename.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => {
            fs::create_dir_all(d)?;
            Some(d)
        }
        _ => None,
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Durability of the rename itself: fsync the directory. Best-effort —
    // some filesystems refuse to open directories for syncing.
    if let Some(dir) = dir {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------

/// Stable identity of one independent work item in a sweep:
/// benchmark × architecture/algorithm × seed × scale × parameter
/// fingerprint. Two runs of the same sweep binary with the same flags
/// produce the same keys, which is what makes resume possible.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkKey {
    /// Benchmark (or section) name.
    pub benchmark: String,
    /// Architecture or algorithm label.
    pub arch: String,
    /// The item's RNG seed.
    pub seed: u64,
    /// Scale label (e.g. `"paper"` or `"reduced-10"`).
    pub scale: String,
    /// [`fingerprint`] of the item's search/configuration parameters, so
    /// a checkpoint taken under different parameters is never reused.
    pub config_fingerprint: u64,
}

impl WorkKey {
    /// Builds a key, fingerprinting `params` (any `Debug`-able parameter
    /// bundle) into the `config_fingerprint` field.
    #[must_use]
    pub fn new(
        benchmark: impl Into<String>,
        arch: impl Into<String>,
        seed: u64,
        scale: impl Into<String>,
        params: &impl fmt::Debug,
    ) -> Self {
        Self {
            benchmark: benchmark.into(),
            arch: arch.into(),
            seed,
            scale: scale.into(),
            config_fingerprint: fingerprint(&format!("{params:?}")),
        }
    }
}

impl fmt::Display for WorkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/seed{}/{}/{:016x}",
            self.benchmark, self.arch, self.seed, self.scale, self.config_fingerprint
        )
    }
}

/// How a work item's result was obtained, recorded in every
/// [`WorkRecord`] so report tables can mark degraded cells.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Degradation {
    /// The primary strategy succeeded.
    #[default]
    None,
    /// A fallback strategy produced the result after the primary failed
    /// repeatedly (e.g. BS-SA degraded to the DALTA baseline).
    Degraded {
        /// Label of the strategy that produced the result.
        strategy: String,
    },
    /// Every strategy failed; the record is a placeholder with no result.
    Failed,
}

impl Degradation {
    /// True unless the primary strategy succeeded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !matches!(self, Self::None)
    }
}

/// One finished work item inside a [`SweepSnapshot`]: its key, how it
/// finished, and (unless it failed outright) its result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkRecord<R> {
    /// The item's identity.
    pub key: WorkKey,
    /// How the result was obtained.
    pub degradation: Degradation,
    /// Total strategy attempts spent on the item.
    pub attempts: u32,
    /// The result; `None` only when `degradation` is
    /// [`Degradation::Failed`].
    pub result: Option<R>,
}

/// Sweep-level state persisted between work items: which items finished
/// (with their results) and which were in flight when the checkpoint was
/// taken. In-flight items are replayed on resume — their partial work is
/// discarded, so resumed results match an uninterrupted run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSnapshot<R> {
    /// Fingerprint of the whole sweep configuration (seed, scale, runs,
    /// parameters). A checkpoint whose fingerprint differs from the
    /// resuming run's is ignored rather than merged.
    pub sweep_fingerprint: u64,
    /// Completed items, in completion order.
    pub completed: Vec<WorkRecord<R>>,
    /// Items that were running when the checkpoint was written.
    pub in_flight: Vec<WorkKey>,
}

impl<R> SweepSnapshot<R> {
    /// An empty snapshot for a sweep with the given fingerprint.
    #[must_use]
    pub fn new(sweep_fingerprint: u64) -> Self {
        Self {
            sweep_fingerprint,
            completed: Vec::new(),
            in_flight: Vec::new(),
        }
    }

    /// The completed record for `key`, if any.
    #[must_use]
    pub fn find(&self, key: &WorkKey) -> Option<&WorkRecord<R>> {
        self.completed.iter().find(|r| &r.key == key)
    }
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// On-disk JSON envelope around one serialised snapshot.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    magic: String,
    version: u32,
    generation: u64,
    crc32: u32,
    payload: String,
}

/// A checkpoint successfully read back by [`CheckpointStore::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedCheckpoint<T> {
    /// The deserialised snapshot.
    pub snapshot: T,
    /// The generation number it was saved under.
    pub generation: u64,
}

/// Versioned, checksummed, double-buffered checkpoint persistence.
///
/// One store owns one directory. [`save`](Self::save) alternates between
/// two slot files with crash-safe atomic writes, so the last good
/// checkpoint always survives; [`load`](Self::load) returns the newest
/// slot that passes magic/version/CRC/payload validation, falling back to
/// the older one when the newest is corrupt.
#[derive(Debug)]
pub struct CheckpointStore {
    slots: [PathBuf; 2],
    /// Highest generation seen on disk (0 = none); the next save writes
    /// `generation + 1` into the *other* slot. Atomic so a supervisor
    /// holding the store stays `Sync`; saves themselves are serialised by
    /// the single supervisor thread that calls them.
    generation: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let store = Self {
            slots: [dir.join("slot_a.ckpt"), dir.join("slot_b.ckpt")],
            generation: AtomicU64::new(0),
        };
        let newest = store
            .read_envelopes()
            .into_iter()
            .flatten()
            .map(|e| e.generation)
            .max()
            .unwrap_or(0);
        store.generation.store(newest, Ordering::Relaxed);
        Ok(store)
    }

    /// The generation of the newest valid checkpoint on disk (0 when the
    /// store is empty).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Saves `snapshot` as a new generation, overwriting the slot that
    /// does *not* hold the current newest checkpoint. Returns the new
    /// generation number.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and I/O errors; on error the previous
    /// checkpoint is untouched.
    pub fn save<T: Serialize>(&self, snapshot: &T) -> io::Result<u64> {
        let payload = serde_json::to_string(snapshot)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let envelope = Envelope {
            magic: MAGIC.to_string(),
            version: VERSION,
            generation,
            crc32: crc32(payload.as_bytes()),
            payload,
        };
        let bytes = serde_json::to_string(&envelope)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Even generations land in slot B, odd in slot A — strictly
        // alternating, so the newest good checkpoint is never overwritten.
        let slot = &self.slots[generation.is_multiple_of(2) as usize];
        atomic_write(slot, bytes.as_bytes())?;
        self.generation.store(generation, Ordering::Relaxed);
        Ok(generation)
    }

    /// Loads the newest checkpoint that passes validation, or `None` when
    /// no valid checkpoint exists. A corrupt newest slot (truncated,
    /// bit-flipped, wrong magic/version, CRC mismatch, or an unparseable
    /// payload) is skipped in favour of the other slot.
    ///
    /// # Errors
    ///
    /// Never returns corruption as an error — corrupt slots are treated
    /// as absent. (The `Result` wrapper is reserved for future I/O modes;
    /// the current implementation always returns `Ok`.)
    #[allow(clippy::unnecessary_wraps)]
    pub fn load<T: DeserializeOwned>(&self) -> io::Result<Option<LoadedCheckpoint<T>>> {
        let mut best: Option<LoadedCheckpoint<T>> = None;
        for envelope in self.read_envelopes().into_iter().flatten() {
            if best
                .as_ref()
                .is_some_and(|b| b.generation >= envelope.generation)
            {
                continue;
            }
            if let Ok(snapshot) = serde_json::from_str::<T>(&envelope.payload) {
                best = Some(LoadedCheckpoint {
                    snapshot,
                    generation: envelope.generation,
                });
            }
        }
        Ok(best)
    }

    /// Reads and structurally validates both slots (magic, version, CRC).
    /// Invalid or missing slots come back as `None`.
    fn read_envelopes(&self) -> [Option<Envelope>; 2] {
        let read = |path: &Path| -> Option<Envelope> {
            let text = fs::read_to_string(path).ok()?;
            let e: Envelope = serde_json::from_str(&text).ok()?;
            (e.magic == MAGIC && e.version == VERSION && crc32(e.payload.as_bytes()) == e.crc32)
                .then_some(e)
        };
        [read(&self.slots[0]), read(&self.slots[1])]
    }

    /// Paths of the two slot files (for tests and diagnostics).
    #[must_use]
    pub fn slot_paths(&self) -> [&Path; 2] {
        [&self.slots[0], &self.slots[1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dalut_ckpt_{tag}_{}_{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
    }

    #[test]
    fn atomic_write_creates_parents_and_replaces() {
        let dir = temp_dir("atomic");
        let p = dir.join("nested").join("out.json");
        atomic_write(&p, b"one").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"one");
        atomic_write(&p, b"two").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"two");
        // No temp file left behind.
        assert!(!p.with_extension("json.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_round_trips_and_rotates_generations() {
        let dir = temp_dir("rotate");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.generation(), 0);
        assert!(store.load::<SweepSnapshot<u32>>().unwrap().is_none());

        let mut snap = SweepSnapshot::<u32>::new(7);
        snap.completed.push(WorkRecord {
            key: WorkKey::new("cos", "bs-sa", 1, "reduced-6", &"params"),
            degradation: Degradation::None,
            attempts: 1,
            result: Some(41),
        });
        assert_eq!(store.save(&snap).unwrap(), 1);
        snap.completed[0].result = Some(42);
        assert_eq!(store.save(&snap).unwrap(), 2);

        let loaded = store.load::<SweepSnapshot<u32>>().unwrap().unwrap();
        assert_eq!(loaded.generation, 2);
        assert_eq!(loaded.snapshot.completed[0].result, Some(42));

        // Reopening resumes the generation counter.
        let reopened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(reopened.generation(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_slot_falls_back_to_previous_good_one() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        let mut snap = SweepSnapshot::<u32>::new(1);
        store.save(&snap).unwrap(); // gen 1 -> slot A
        snap.completed.push(WorkRecord {
            key: WorkKey::new("b", "a", 2, "s", &0u8),
            degradation: Degradation::Failed,
            attempts: 3,
            result: None,
        });
        store.save(&snap).unwrap(); // gen 2 -> slot B (newest)

        // Truncate the newest slot mid-file.
        let newest = store.slot_paths()[1].to_path_buf();
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = CheckpointStore::open(&dir)
            .unwrap()
            .load::<SweepSnapshot<u32>>()
            .unwrap()
            .unwrap();
        assert_eq!(loaded.generation, 1);
        assert!(loaded.snapshot.completed.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_detected_by_the_crc() {
        let dir = temp_dir("bitflip");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&SweepSnapshot::<u32>::new(9)).unwrap();
        let slot = store.slot_paths()[0].to_path_buf();
        let mut bytes = fs::read(&slot).unwrap();
        // Flip one bit inside the payload (past the envelope prefix).
        let idx = bytes.len() - 3;
        bytes[idx] ^= 0x01;
        fs::write(&slot, &bytes).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load::<SweepSnapshot<u32>>().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn work_key_display_and_lookup() {
        let key = WorkKey::new("cos", "dalta", 5, "paper", &"p");
        assert!(key.to_string().starts_with("cos/dalta/seed5/paper/"));
        let mut snap = SweepSnapshot::<u8>::new(0);
        assert!(snap.find(&key).is_none());
        snap.completed.push(WorkRecord {
            key: key.clone(),
            degradation: Degradation::Degraded {
                strategy: "dalta".into(),
            },
            attempts: 4,
            result: Some(1),
        });
        let rec = snap.find(&key).unwrap();
        assert!(rec.degradation.is_degraded());
        assert_eq!(rec.attempts, 4);
    }
}
