//! Structured observability for the search stack.
//!
//! Every search entry point accepts an [`Observer`] — a sink for the
//! [`SearchEvent`] stream emitted as the search runs: search start/finish,
//! beam generations, per-bit refinements, SA chain starts, neighbourhood
//! batch fan-out/join statistics, temperature steps, kernel invocations
//! (with restart and alternation counts from
//! [`dalut_decomp::kernel_stats`]), budget consumption ticks and
//! fault-sweep progress. The default [`NoopObserver`] compiles to an empty
//! virtual call, so uninstrumented runs pay nothing measurable.
//!
//! Events deliberately carry **no timestamps**: with a fixed seed on a
//! single thread, the event sequence is a pure function of the inputs
//! (sinks that want wall-clock, like [`JsonlTraceWriter`], stamp events
//! on arrival). Three sinks ship with the crate:
//!
//! * [`MetricsRecorder`] — atomic counters + log₂ histograms + per-phase
//!   breakdowns, snapshotted to a serialisable [`MetricsSnapshot`].
//! * [`JsonlTraceWriter`] — one JSON object per line, each wrapping an
//!   event in a `{seq, t_us, event}` envelope, for offline timeline
//!   analysis.
//! * [`RecordingObserver`] — buffers events in memory, for tests.
//!
//! Multiple sinks combine with [`MultiObserver`].
//!
//! Threading contract: `Observer::on_event` must be callable from any
//! search worker thread (`Send + Sync`). With `threads <= 1` events
//! arrive in a deterministic order; with a parallel fan-out, events from
//! concurrent workers interleave nondeterministically (each event is
//! still delivered exactly once).

use std::fmt;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::budget::Termination;
use crate::sa::DecompMode;
use dalut_decomp::{kernel_stats, KernelStats};

/// One notification from a running search.
///
/// The enum is non-exhaustive: downstream sinks must keep a wildcard arm
/// so new event kinds can ship without breaking them.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum SearchEvent {
    /// A top-level search began.
    SearchStarted {
        /// `"dalta"` or `"bs-sa"`.
        algorithm: String,
        /// Input bits of the target function.
        inputs: usize,
        /// Output bits of the target function.
        outputs: usize,
        /// Optimisation rounds the search will attempt.
        rounds: usize,
        /// Master seed.
        seed: u64,
    },
    /// The search returned; mirrors the headline `SearchOutcome` fields.
    SearchFinished {
        /// Final mean error distance.
        med: f64,
        /// Budget iterations consumed.
        iterations: u64,
        /// How the run ended.
        termination: Termination,
    },
    /// A named phase began (phases may nest; names are free-form, e.g.
    /// `"beam"`, `"refine"`, or harness-defined like `"kernel"`).
    PhaseStarted {
        /// Phase label.
        phase: String,
    },
    /// The innermost open phase with this name finished.
    PhaseFinished {
        /// Phase label.
        phase: String,
    },
    /// An optimisation round completed with the given incumbent error.
    RoundFinished {
        /// 1-based round number.
        round: usize,
        /// Mean error distance after the round.
        med: f64,
    },
    /// Round-1 beam search finished one output bit.
    BeamGeneration {
        /// Output bit index.
        bit: usize,
        /// Candidates scored before pruning.
        candidates: usize,
        /// Beam entries kept after pruning.
        kept: usize,
    },
    /// A refinement round re-optimised one output bit.
    BitRefined {
        /// 1-based round number.
        round: usize,
        /// Output bit index.
        bit: usize,
        /// Decomposition mode chosen for the bit this round.
        mode: DecompMode,
        /// Bit-level error of the accepted setting.
        error: f64,
    },
    /// An SA chain evaluated its starting partition.
    SaChainStarted {
        /// Starting error of the chain.
        error: f64,
    },
    /// An SA chain cooled down after one neighbourhood batch.
    TemperatureStep {
        /// Temperature after cooling.
        temperature: f64,
    },
    /// One SA neighbourhood batch was fanned out and joined.
    NeighbourBatch {
        /// Neighbours drawn for the batch.
        requested: usize,
        /// Neighbours answered from the visited set `Φ`.
        cache_hits: usize,
        /// Neighbours evaluated by worker tasks.
        evaluated: usize,
        /// Worker tasks that panicked (neighbour dropped).
        failed: usize,
        /// Size of `Φ` after the batch merged.
        visited: usize,
    },
    /// A kernel call (or a tight group of calls, e.g. the non-disjoint
    /// variant's sub-calls) completed on the emitting thread.
    KernelInvocation {
        /// Decomposition mode requested.
        mode: DecompMode,
        /// Kernel entry points hit.
        calls: u64,
        /// Random restarts executed.
        restarts: u64,
        /// Alternating-minimisation iterations performed.
        alternations: u64,
    },
    /// The budget timer counted one search iteration.
    BudgetTick {
        /// Total iterations consumed so far.
        iterations: u64,
    },
    /// A task fan-out over the worker pool joined.
    TaskBatch {
        /// Tasks submitted.
        tasks: usize,
        /// Worker threads requested.
        threads: usize,
        /// Tasks that panicked.
        failed: usize,
    },
    /// A simulation engine finished a block of sign-off cycles (the
    /// hardware-evaluation analogue of `KernelInvocation`).
    SimBatch {
        /// Engine label: `"scalar"` or `"batch"`.
        engine: String,
        /// Cycles simulated in this batch.
        cycles: u64,
        /// Lane-word blocks evaluated (1 for scalar runs).
        blocks: u64,
    },
    /// An analytic resource estimator scored a batch of candidate
    /// configurations without building netlists.
    EstimateBatch {
        /// Architecture family label (e.g. `"dalta"`, `"bto-normal"`).
        arch: String,
        /// Candidates estimated in this batch.
        candidates: usize,
    },
    /// A pruning stage split estimated candidates into survivors (which
    /// pay exact sign-off) and pruned candidates (which keep their
    /// estimate).
    PruneDecision {
        /// Candidates considered.
        candidates: usize,
        /// Survivors kept for exact sign-off.
        kept: usize,
        /// Estimator mode label: `"prune"` or `"trust"`.
        mode: String,
    },
    /// A fault-injection sweep advanced.
    FaultSweepProgress {
        /// Architecture label being swept.
        arch: String,
        /// Campaigns finished.
        completed: usize,
        /// Campaigns total.
        total: usize,
    },
    /// The supervisor flushed a sweep checkpoint to disk.
    CheckpointSaved {
        /// Generation number of the checkpoint just written.
        generation: u64,
        /// Work items completed at the time of the flush.
        completed: usize,
    },
    /// A resumed run loaded a prior sweep checkpoint.
    CheckpointLoaded {
        /// Generation number of the loaded checkpoint.
        generation: u64,
        /// Completed work items recovered (they will be skipped).
        completed: usize,
        /// In-flight items recovered (they will be replayed).
        in_flight: usize,
    },
    /// A work item failed and will be attempted again.
    ItemRetried {
        /// Display form of the item's [`WorkKey`](crate::WorkKey).
        key: String,
        /// 1-based attempt number that just failed.
        attempt: u32,
        /// Backoff before the next attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// A work item exhausted retries and fell back to a weaker strategy
    /// (or was recorded as failed when no strategy remained).
    ItemDegraded {
        /// Display form of the item's [`WorkKey`](crate::WorkKey).
        key: String,
        /// Strategy now being used; `None` when the item is recorded as
        /// failed with no result.
        strategy: Option<String>,
    },
    /// The process received a shutdown signal and is cancelling the run.
    ShutdownRequested {
        /// Signal name (e.g. `"SIGINT"`).
        signal: String,
    },
    /// A runtime controller's windowed observed error rose above its SLO
    /// target (emitted once on entering violation, not per epoch).
    SloViolated {
        /// Windowed mean observed error at the violation.
        observed: f64,
        /// The SLO error target that was exceeded.
        target: f64,
    },
    /// A runtime controller saw a sudden epoch-to-epoch error jump and
    /// suspects corrupted configuration memory (as opposed to gradual
    /// input-distribution drift).
    FaultSuspected {
        /// The epoch-to-epoch error jump that fired the detector.
        jump: f64,
        /// The jump threshold it exceeded.
        threshold: f64,
    },
    /// A scrub pass rewrote the live configuration memory back to its
    /// golden contents through the writable-DFF path.
    ScrubCompleted {
        /// Stored bits whose value the scrub corrected (0 means the
        /// memory was already golden — the suspected fault was drift).
        repaired_bits: usize,
    },
    /// A runtime controller hot-swapped the live instance to another
    /// pre-compiled configuration variant.
    VariantSwapped {
        /// Label of the variant being left.
        from: String,
        /// Label of the variant now serving.
        to: String,
        /// `true` for an accuracy upgrade, `false` for an energy relax.
        upgrade: bool,
    },
    /// A runtime controller's windowed observed error fell back under
    /// its SLO target after a violation.
    SloRecovered {
        /// Windowed mean observed error at recovery.
        observed: f64,
        /// The SLO error target.
        target: f64,
    },
    /// A serving-layer admission controller shed a job under overload,
    /// attaching a back-off hint to the reject frame.
    OverloadShed {
        /// Jobs queued at the shed decision.
        queued: usize,
        /// Jobs running at the shed decision.
        running: usize,
        /// The `retry_after_ms` hint attached to the reject.
        retry_after_ms: u64,
    },
    /// A job fingerprint crossed the panic threshold and entered the
    /// poison quarantine: further submissions are fast-rejected instead
    /// of re-run.
    JobQuarantined {
        /// 32-hex display form of the quarantined fingerprint.
        fingerprint: String,
        /// Panics observed for this fingerprint so far.
        panics: u32,
    },
    /// A persistent-cache entry failed validation (checksum mismatch,
    /// name/fingerprint disagreement) and was quarantined on disk rather
    /// than served.
    CacheEntryCorrupt {
        /// File name of the quarantined entry.
        file: String,
    },
}

/// A sink for [`SearchEvent`]s.
///
/// Implementations must tolerate calls from any search worker thread and
/// should return quickly — the hot path calls straight into them.
pub trait Observer: Send + Sync {
    /// Receives one event. Called synchronously from the search.
    fn on_event(&self, event: &SearchEvent);

    /// Whether this observer wants events at all. The search skips
    /// building allocation- or measurement-heavy events (e.g. per-kernel
    /// counter deltas) when this returns `false`. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

impl<T: Observer + ?Sized> Observer for &T {
    fn on_event(&self, event: &SearchEvent) {
        (**self).on_event(event);
    }
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

impl<T: Observer + ?Sized> Observer for Arc<T> {
    fn on_event(&self, event: &SearchEvent) {
        (**self).on_event(event);
    }
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// The default do-nothing observer: `enabled()` is `false`, so the search
/// skips event construction entirely and the hot path stays untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn on_event(&self, _event: &SearchEvent) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// Shared no-op instance for default observer references.
pub(crate) static NOOP: NoopObserver = NoopObserver;

/// Buffers every event in memory; `events()` clones them out. Meant for
/// tests (event-sequence determinism) and small diagnostic runs.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Mutex<Vec<SearchEvent>>,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far, in arrival order.
    #[must_use]
    pub fn events(&self) -> Vec<SearchEvent> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Observer for RecordingObserver {
    fn on_event(&self, event: &SearchEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Fans each event out to several sinks in order.
#[derive(Default, Clone)]
pub struct MultiObserver {
    sinks: Vec<Arc<dyn Observer>>,
}

impl fmt::Debug for MultiObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiObserver")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiObserver {
    /// Creates an empty fan-out (equivalent to [`NoopObserver`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink.
    #[must_use]
    pub fn with(mut self, sink: Arc<dyn Observer>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink in place.
    pub fn push(&mut self, sink: Arc<dyn Observer>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Observer for MultiObserver {
    fn on_event(&self, event: &SearchEvent) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

/// Number of log₂ histogram buckets (bucket `i` counts values `v` with
/// `floor(log2(v)) == i`; bucket 0 also counts `v == 0`).
const HIST_BUCKETS: usize = 32;

#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    fn record(&self, value: u64) {
        let idx = (64 - u64::leading_zeros(value.max(1)) as usize - 1).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }
}

/// Flat counter totals inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// `SearchStarted` events.
    pub searches_started: u64,
    /// `SearchFinished` events.
    pub searches_finished: u64,
    /// `RoundFinished` events.
    pub rounds_finished: u64,
    /// `BeamGeneration` events.
    pub beam_generations: u64,
    /// Candidates scored across all beam generations.
    pub beam_candidates: u64,
    /// `BitRefined` events.
    pub bits_refined: u64,
    /// `SaChainStarted` events.
    pub sa_chains: u64,
    /// `TemperatureStep` events.
    pub temperature_steps: u64,
    /// `NeighbourBatch` events.
    pub neighbour_batches: u64,
    /// Neighbours drawn across all batches.
    pub neighbours_requested: u64,
    /// Neighbours answered from the visited set.
    pub neighbour_cache_hits: u64,
    /// Neighbours evaluated by worker tasks.
    pub neighbours_evaluated: u64,
    /// Neighbour evaluations lost to worker panics.
    pub neighbours_failed: u64,
    /// `KernelInvocation` events.
    pub kernel_events: u64,
    /// Kernel calls reported by those events.
    pub kernel_calls: u64,
    /// Kernel restarts reported by those events.
    pub kernel_restarts: u64,
    /// Kernel alternation iterations reported by those events.
    pub kernel_alternations: u64,
    /// `BudgetTick` events (== search iterations observed).
    pub budget_ticks: u64,
    /// `TaskBatch` events.
    pub task_batches: u64,
    /// `SimBatch` events.
    #[serde(default)]
    pub sim_batches: u64,
    /// Cycles simulated across all `SimBatch` events.
    #[serde(default)]
    pub sim_cycles: u64,
    /// `EstimateBatch` events.
    #[serde(default)]
    pub estimate_batches: u64,
    /// Candidates estimated across all `EstimateBatch` events.
    #[serde(default)]
    pub estimates_made: u64,
    /// `PruneDecision` events.
    #[serde(default)]
    pub prune_decisions: u64,
    /// Candidates dropped (considered − kept) across all `PruneDecision`
    /// events.
    #[serde(default)]
    pub candidates_pruned: u64,
    /// `FaultSweepProgress` events.
    pub fault_progress: u64,
    /// `CheckpointSaved` events.
    pub checkpoints_saved: u64,
    /// `CheckpointLoaded` events.
    pub checkpoints_loaded: u64,
    /// `ItemRetried` events.
    pub items_retried: u64,
    /// `ItemDegraded` events.
    pub items_degraded: u64,
    /// `ShutdownRequested` events.
    pub shutdowns_requested: u64,
    /// `SloViolated` events (violation entries, not violating epochs).
    #[serde(default)]
    pub slo_violations: u64,
    /// `FaultSuspected` events.
    #[serde(default)]
    pub faults_suspected: u64,
    /// `ScrubCompleted` events.
    #[serde(default)]
    pub scrubs_completed: u64,
    /// Stored bits corrected across all `ScrubCompleted` events.
    #[serde(default)]
    pub bits_scrubbed: u64,
    /// `VariantSwapped` events with `upgrade == true`.
    #[serde(default)]
    pub variant_upgrades: u64,
    /// `VariantSwapped` events with `upgrade == false`.
    #[serde(default)]
    pub variant_relaxes: u64,
    /// `SloRecovered` events.
    #[serde(default)]
    pub slo_recoveries: u64,
    /// `OverloadShed` events.
    #[serde(default)]
    pub overload_sheds: u64,
    /// `JobQuarantined` events.
    #[serde(default)]
    pub jobs_quarantined: u64,
    /// `CacheEntryCorrupt` events.
    #[serde(default)]
    pub cache_entries_corrupt: u64,
}

/// Aggregated effort attributed to one named phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Phase label (from `PhaseStarted`/`PhaseFinished`).
    pub name: String,
    /// Wall-clock seconds between start and finish.
    pub seconds: f64,
    /// Budget ticks observed while the phase was open.
    pub iterations: u64,
    /// Process-wide kernel work performed while the phase was open.
    pub kernel: KernelStats,
}

/// One named histogram inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// What was measured.
    pub name: String,
    /// Count per log₂ bucket (`buckets[i]` counts values in
    /// `[2^i, 2^(i+1))`; bucket 0 also counts zero). Trailing empty
    /// buckets are trimmed.
    pub buckets: Vec<u64>,
}

/// Serialisable dump of a [`MetricsRecorder`], embedded by the bench
/// harness into `perfreport`/`faultsweep` JSON reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Flat event/counter totals.
    pub counters: CounterSnapshot,
    /// `neighbour_cache_hits / neighbours_requested` (0 when nothing was
    /// requested).
    pub cache_hit_rate: f64,
    /// Process-wide kernel work since the recorder was created (includes
    /// kernel calls made outside any observed search on this process).
    pub kernel_process_delta: KernelStats,
    /// Per-phase effort breakdowns, in completion order.
    pub phases: Vec<PhaseSnapshot>,
    /// Distribution histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

/// An open phase on the recorder's phase stack.
#[derive(Debug)]
struct OpenPhase {
    name: String,
    started: Instant,
    ticks_at_start: u64,
    kernel_at_start: KernelStats,
}

/// Lock-free counters + histograms over the event stream, with per-phase
/// wall-clock/iteration/kernel-work attribution. One recorder can watch
/// several sequential searches; totals accumulate.
#[derive(Debug)]
pub struct MetricsRecorder {
    searches_started: AtomicU64,
    searches_finished: AtomicU64,
    rounds_finished: AtomicU64,
    beam_generations: AtomicU64,
    beam_candidates: AtomicU64,
    bits_refined: AtomicU64,
    sa_chains: AtomicU64,
    temperature_steps: AtomicU64,
    neighbour_batches: AtomicU64,
    neighbours_requested: AtomicU64,
    neighbour_cache_hits: AtomicU64,
    neighbours_evaluated: AtomicU64,
    neighbours_failed: AtomicU64,
    kernel_events: AtomicU64,
    kernel_calls: AtomicU64,
    kernel_restarts: AtomicU64,
    kernel_alternations: AtomicU64,
    budget_ticks: AtomicU64,
    task_batches: AtomicU64,
    sim_batches: AtomicU64,
    sim_cycles: AtomicU64,
    estimate_batches: AtomicU64,
    estimates_made: AtomicU64,
    prune_decisions: AtomicU64,
    candidates_pruned: AtomicU64,
    fault_progress: AtomicU64,
    checkpoints_saved: AtomicU64,
    checkpoints_loaded: AtomicU64,
    items_retried: AtomicU64,
    items_degraded: AtomicU64,
    shutdowns_requested: AtomicU64,
    slo_violations: AtomicU64,
    faults_suspected: AtomicU64,
    scrubs_completed: AtomicU64,
    bits_scrubbed: AtomicU64,
    variant_upgrades: AtomicU64,
    variant_relaxes: AtomicU64,
    slo_recoveries: AtomicU64,
    overload_sheds: AtomicU64,
    jobs_quarantined: AtomicU64,
    cache_entries_corrupt: AtomicU64,
    hist_batch_evaluated: Histogram,
    hist_kernel_alternations: Histogram,
    kernel_at_creation: KernelStats,
    phases: Mutex<PhaseState>,
}

#[derive(Debug, Default)]
struct PhaseState {
    open: Vec<OpenPhase>,
    finished: Vec<PhaseSnapshot>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// Creates a recorder; kernel process totals are measured relative to
    /// this moment.
    #[must_use]
    pub fn new() -> Self {
        Self {
            searches_started: AtomicU64::new(0),
            searches_finished: AtomicU64::new(0),
            rounds_finished: AtomicU64::new(0),
            beam_generations: AtomicU64::new(0),
            beam_candidates: AtomicU64::new(0),
            bits_refined: AtomicU64::new(0),
            sa_chains: AtomicU64::new(0),
            temperature_steps: AtomicU64::new(0),
            neighbour_batches: AtomicU64::new(0),
            neighbours_requested: AtomicU64::new(0),
            neighbour_cache_hits: AtomicU64::new(0),
            neighbours_evaluated: AtomicU64::new(0),
            neighbours_failed: AtomicU64::new(0),
            kernel_events: AtomicU64::new(0),
            kernel_calls: AtomicU64::new(0),
            kernel_restarts: AtomicU64::new(0),
            kernel_alternations: AtomicU64::new(0),
            budget_ticks: AtomicU64::new(0),
            task_batches: AtomicU64::new(0),
            sim_batches: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
            estimate_batches: AtomicU64::new(0),
            estimates_made: AtomicU64::new(0),
            prune_decisions: AtomicU64::new(0),
            candidates_pruned: AtomicU64::new(0),
            fault_progress: AtomicU64::new(0),
            checkpoints_saved: AtomicU64::new(0),
            checkpoints_loaded: AtomicU64::new(0),
            items_retried: AtomicU64::new(0),
            items_degraded: AtomicU64::new(0),
            shutdowns_requested: AtomicU64::new(0),
            slo_violations: AtomicU64::new(0),
            faults_suspected: AtomicU64::new(0),
            scrubs_completed: AtomicU64::new(0),
            bits_scrubbed: AtomicU64::new(0),
            variant_upgrades: AtomicU64::new(0),
            variant_relaxes: AtomicU64::new(0),
            slo_recoveries: AtomicU64::new(0),
            overload_sheds: AtomicU64::new(0),
            jobs_quarantined: AtomicU64::new(0),
            cache_entries_corrupt: AtomicU64::new(0),
            hist_batch_evaluated: Histogram::default(),
            hist_kernel_alternations: Histogram::default(),
            kernel_at_creation: kernel_stats::global(),
            phases: Mutex::new(PhaseState::default()),
        }
    }

    /// Snapshots every counter, histogram and finished phase. Phases
    /// still open at snapshot time are not included.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let counters = CounterSnapshot {
            searches_started: ld(&self.searches_started),
            searches_finished: ld(&self.searches_finished),
            rounds_finished: ld(&self.rounds_finished),
            beam_generations: ld(&self.beam_generations),
            beam_candidates: ld(&self.beam_candidates),
            bits_refined: ld(&self.bits_refined),
            sa_chains: ld(&self.sa_chains),
            temperature_steps: ld(&self.temperature_steps),
            neighbour_batches: ld(&self.neighbour_batches),
            neighbours_requested: ld(&self.neighbours_requested),
            neighbour_cache_hits: ld(&self.neighbour_cache_hits),
            neighbours_evaluated: ld(&self.neighbours_evaluated),
            neighbours_failed: ld(&self.neighbours_failed),
            kernel_events: ld(&self.kernel_events),
            kernel_calls: ld(&self.kernel_calls),
            kernel_restarts: ld(&self.kernel_restarts),
            kernel_alternations: ld(&self.kernel_alternations),
            budget_ticks: ld(&self.budget_ticks),
            task_batches: ld(&self.task_batches),
            sim_batches: ld(&self.sim_batches),
            sim_cycles: ld(&self.sim_cycles),
            estimate_batches: ld(&self.estimate_batches),
            estimates_made: ld(&self.estimates_made),
            prune_decisions: ld(&self.prune_decisions),
            candidates_pruned: ld(&self.candidates_pruned),
            fault_progress: ld(&self.fault_progress),
            checkpoints_saved: ld(&self.checkpoints_saved),
            checkpoints_loaded: ld(&self.checkpoints_loaded),
            items_retried: ld(&self.items_retried),
            items_degraded: ld(&self.items_degraded),
            shutdowns_requested: ld(&self.shutdowns_requested),
            slo_violations: ld(&self.slo_violations),
            faults_suspected: ld(&self.faults_suspected),
            scrubs_completed: ld(&self.scrubs_completed),
            bits_scrubbed: ld(&self.bits_scrubbed),
            variant_upgrades: ld(&self.variant_upgrades),
            variant_relaxes: ld(&self.variant_relaxes),
            slo_recoveries: ld(&self.slo_recoveries),
            overload_sheds: ld(&self.overload_sheds),
            jobs_quarantined: ld(&self.jobs_quarantined),
            cache_entries_corrupt: ld(&self.cache_entries_corrupt),
        };
        let cache_hit_rate = if counters.neighbours_requested == 0 {
            0.0
        } else {
            counters.neighbour_cache_hits as f64 / counters.neighbours_requested as f64
        };
        MetricsSnapshot {
            counters,
            cache_hit_rate,
            kernel_process_delta: kernel_stats::global().delta_since(self.kernel_at_creation),
            phases: self.phases.lock().finished.clone(),
            histograms: vec![
                HistogramSnapshot {
                    name: "neighbour_batch_evaluated".into(),
                    buckets: self.hist_batch_evaluated.snapshot(),
                },
                HistogramSnapshot {
                    name: "kernel_alternations_per_event".into(),
                    buckets: self.hist_kernel_alternations.snapshot(),
                },
            ],
        }
    }
}

impl Observer for MetricsRecorder {
    fn on_event(&self, event: &SearchEvent) {
        let add = |a: &AtomicU64, v: u64| {
            a.fetch_add(v, Ordering::Relaxed);
        };
        match event {
            SearchEvent::SearchStarted { .. } => add(&self.searches_started, 1),
            SearchEvent::SearchFinished { .. } => add(&self.searches_finished, 1),
            SearchEvent::PhaseStarted { phase } => {
                self.phases.lock().open.push(OpenPhase {
                    name: phase.clone(),
                    started: Instant::now(),
                    ticks_at_start: self.budget_ticks.load(Ordering::Relaxed),
                    kernel_at_start: kernel_stats::global(),
                });
            }
            SearchEvent::PhaseFinished { phase } => {
                let mut st = self.phases.lock();
                if let Some(pos) = st.open.iter().rposition(|p| p.name == *phase) {
                    let open = st.open.remove(pos);
                    st.finished.push(PhaseSnapshot {
                        name: open.name,
                        seconds: open.started.elapsed().as_secs_f64(),
                        iterations: self
                            .budget_ticks
                            .load(Ordering::Relaxed)
                            .saturating_sub(open.ticks_at_start),
                        kernel: kernel_stats::global().delta_since(open.kernel_at_start),
                    });
                }
            }
            SearchEvent::RoundFinished { .. } => add(&self.rounds_finished, 1),
            SearchEvent::BeamGeneration { candidates, .. } => {
                add(&self.beam_generations, 1);
                add(&self.beam_candidates, *candidates as u64);
            }
            SearchEvent::BitRefined { .. } => add(&self.bits_refined, 1),
            SearchEvent::SaChainStarted { .. } => add(&self.sa_chains, 1),
            SearchEvent::TemperatureStep { .. } => add(&self.temperature_steps, 1),
            SearchEvent::NeighbourBatch {
                requested,
                cache_hits,
                evaluated,
                failed,
                ..
            } => {
                add(&self.neighbour_batches, 1);
                add(&self.neighbours_requested, *requested as u64);
                add(&self.neighbour_cache_hits, *cache_hits as u64);
                add(&self.neighbours_evaluated, *evaluated as u64);
                add(&self.neighbours_failed, *failed as u64);
                self.hist_batch_evaluated.record(*evaluated as u64);
            }
            SearchEvent::KernelInvocation {
                calls,
                restarts,
                alternations,
                ..
            } => {
                add(&self.kernel_events, 1);
                add(&self.kernel_calls, *calls);
                add(&self.kernel_restarts, *restarts);
                add(&self.kernel_alternations, *alternations);
                self.hist_kernel_alternations.record(*alternations);
            }
            SearchEvent::BudgetTick { .. } => add(&self.budget_ticks, 1),
            SearchEvent::TaskBatch { .. } => add(&self.task_batches, 1),
            SearchEvent::SimBatch { cycles, .. } => {
                add(&self.sim_batches, 1);
                add(&self.sim_cycles, *cycles);
            }
            SearchEvent::EstimateBatch { candidates, .. } => {
                add(&self.estimate_batches, 1);
                add(&self.estimates_made, *candidates as u64);
            }
            SearchEvent::PruneDecision {
                candidates, kept, ..
            } => {
                add(&self.prune_decisions, 1);
                add(
                    &self.candidates_pruned,
                    candidates.saturating_sub(*kept) as u64,
                );
            }
            SearchEvent::FaultSweepProgress { .. } => add(&self.fault_progress, 1),
            SearchEvent::CheckpointSaved { .. } => add(&self.checkpoints_saved, 1),
            SearchEvent::CheckpointLoaded { .. } => add(&self.checkpoints_loaded, 1),
            SearchEvent::ItemRetried { .. } => add(&self.items_retried, 1),
            SearchEvent::ItemDegraded { .. } => add(&self.items_degraded, 1),
            SearchEvent::ShutdownRequested { .. } => add(&self.shutdowns_requested, 1),
            SearchEvent::SloViolated { .. } => add(&self.slo_violations, 1),
            SearchEvent::FaultSuspected { .. } => add(&self.faults_suspected, 1),
            SearchEvent::ScrubCompleted { repaired_bits } => {
                add(&self.scrubs_completed, 1);
                add(&self.bits_scrubbed, *repaired_bits as u64);
            }
            SearchEvent::VariantSwapped { upgrade, .. } => {
                if *upgrade {
                    add(&self.variant_upgrades, 1);
                } else {
                    add(&self.variant_relaxes, 1);
                }
            }
            SearchEvent::SloRecovered { .. } => add(&self.slo_recoveries, 1),
            SearchEvent::OverloadShed { .. } => add(&self.overload_sheds, 1),
            SearchEvent::JobQuarantined { .. } => add(&self.jobs_quarantined, 1),
            SearchEvent::CacheEntryCorrupt { .. } => add(&self.cache_entries_corrupt, 1),
            // Future event kinds default to uncounted (the enum is
            // non-exhaustive for downstream crates).
            #[allow(unreachable_patterns)]
            _ => {}
        }
    }
}

/// One line of a JSONL trace: the envelope [`JsonlTraceWriter`] wraps
/// around each event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic per-writer sequence number (0-based).
    pub seq: u64,
    /// Microseconds since the writer was created.
    pub t_us: u64,
    /// The event itself.
    pub event: SearchEvent,
}

/// Streams every event as one JSON line (`{"seq":…,"t_us":…,"event":…}`)
/// to a writer. Timestamps are stamped on arrival, so the `event` payload
/// of a fixed-seed single-thread run is reproducible line-for-line.
pub struct JsonlTraceWriter<W: Write + Send> {
    out: Mutex<BufWriter<W>>,
    seq: AtomicU64,
    start: Instant,
}

impl<W: Write + Send> fmt::Debug for JsonlTraceWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlTraceWriter")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl JsonlTraceWriter<std::fs::File> {
    /// Creates (truncating) `path` and traces into it.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlTraceWriter<W> {
    /// Wraps a writer. Output is buffered; call [`Self::flush`] (or drop
    /// the writer) to push trailing lines out.
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(BufWriter::new(out)),
            seq: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().flush()
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl<W: Write + Send> Observer for JsonlTraceWriter<W> {
    fn on_event(&self, event: &SearchEvent) {
        let record = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_us: u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX),
            event: event.clone(),
        };
        if let Ok(line) = serde_json::to_string(&record) {
            let mut out = self.out.lock();
            // A full disk mid-trace must not kill the search; the line is
            // simply lost.
            let _ = writeln!(out, "{line}");
        }
    }
}

impl<W: Write + Send> Drop for JsonlTraceWriter<W> {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

/// Runs `f` and reports the kernel work it performed on **this thread**
/// as a [`SearchEvent::KernelInvocation`]. Skips the counter reads
/// entirely when the observer is disabled.
pub(crate) fn observe_kernel<T>(obs: &dyn Observer, mode: DecompMode, f: impl FnOnce() -> T) -> T {
    if !obs.enabled() {
        return f();
    }
    let before = kernel_stats::current();
    let out = f();
    let d = kernel_stats::current().delta_since(before);
    obs.on_event(&SearchEvent::KernelInvocation {
        mode,
        calls: d.calls,
        restarts: d.restarts,
        alternations: d.alternations,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SearchEvent> {
        vec![
            SearchEvent::SearchStarted {
                algorithm: "bs-sa".into(),
                inputs: 8,
                outputs: 5,
                rounds: 3,
                seed: 42,
            },
            SearchEvent::PhaseStarted {
                phase: "beam".into(),
            },
            SearchEvent::NeighbourBatch {
                requested: 5,
                cache_hits: 2,
                evaluated: 3,
                failed: 0,
                visited: 17,
            },
            SearchEvent::KernelInvocation {
                mode: DecompMode::Normal,
                calls: 1,
                restarts: 30,
                alternations: 210,
            },
            SearchEvent::BudgetTick { iterations: 1 },
            SearchEvent::PhaseFinished {
                phase: "beam".into(),
            },
            SearchEvent::RoundFinished { round: 1, med: 0.5 },
            SearchEvent::SearchFinished {
                med: 0.5,
                iterations: 1,
                termination: Termination::Completed,
            },
        ]
    }

    #[test]
    fn recorder_counts_and_phases() {
        let rec = MetricsRecorder::new();
        for e in sample_events() {
            rec.on_event(&e);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters.searches_started, 1);
        assert_eq!(snap.counters.searches_finished, 1);
        assert_eq!(snap.counters.neighbour_batches, 1);
        assert_eq!(snap.counters.neighbours_requested, 5);
        assert_eq!(snap.counters.neighbour_cache_hits, 2);
        assert_eq!(snap.counters.kernel_restarts, 30);
        assert_eq!(snap.counters.budget_ticks, 1);
        assert!((snap.cache_hit_rate - 0.4).abs() < 1e-12);
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].name, "beam");
        assert_eq!(snap.phases[0].iterations, 1);
    }

    #[test]
    fn recorder_counts_estimator_events() {
        let rec = MetricsRecorder::new();
        rec.on_event(&SearchEvent::EstimateBatch {
            arch: "bto-normal".into(),
            candidates: 7,
        });
        rec.on_event(&SearchEvent::EstimateBatch {
            arch: "dalta".into(),
            candidates: 1,
        });
        rec.on_event(&SearchEvent::PruneDecision {
            candidates: 8,
            kept: 3,
            mode: "prune".into(),
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters.estimate_batches, 2);
        assert_eq!(snap.counters.estimates_made, 8);
        assert_eq!(snap.counters.prune_decisions, 1);
        assert_eq!(snap.counters.candidates_pruned, 5);
    }

    #[test]
    fn recorder_counts_controller_events() {
        let rec = MetricsRecorder::new();
        rec.on_event(&SearchEvent::SloViolated {
            observed: 3.0,
            target: 2.0,
        });
        rec.on_event(&SearchEvent::FaultSuspected {
            jump: 5.0,
            threshold: 1.0,
        });
        rec.on_event(&SearchEvent::ScrubCompleted { repaired_bits: 12 });
        rec.on_event(&SearchEvent::ScrubCompleted { repaired_bits: 0 });
        rec.on_event(&SearchEvent::VariantSwapped {
            from: "bto".into(),
            to: "nd".into(),
            upgrade: true,
        });
        rec.on_event(&SearchEvent::VariantSwapped {
            from: "nd".into(),
            to: "bto".into(),
            upgrade: false,
        });
        rec.on_event(&SearchEvent::SloRecovered {
            observed: 1.0,
            target: 2.0,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters.slo_violations, 1);
        assert_eq!(snap.counters.faults_suspected, 1);
        assert_eq!(snap.counters.scrubs_completed, 2);
        assert_eq!(snap.counters.bits_scrubbed, 12);
        assert_eq!(snap.counters.variant_upgrades, 1);
        assert_eq!(snap.counters.variant_relaxes, 1);
        assert_eq!(snap.counters.slo_recoveries, 1);
    }

    #[test]
    fn recorder_counts_serving_hardening_events() {
        let rec = MetricsRecorder::new();
        rec.on_event(&SearchEvent::OverloadShed {
            queued: 100,
            running: 4,
            retry_after_ms: 1200,
        });
        rec.on_event(&SearchEvent::JobQuarantined {
            fingerprint: "00".repeat(16),
            panics: 2,
        });
        rec.on_event(&SearchEvent::CacheEntryCorrupt {
            file: "deadbeef.json".into(),
        });
        rec.on_event(&SearchEvent::CacheEntryCorrupt {
            file: "cafebabe.json".into(),
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters.overload_sheds, 1);
        assert_eq!(snap.counters.jobs_quarantined, 1);
        assert_eq!(snap.counters.cache_entries_corrupt, 2);
    }

    #[test]
    fn estimator_events_serialise_with_snake_case_tags() {
        let e = SearchEvent::PruneDecision {
            candidates: 4,
            kept: 2,
            mode: "trust".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"type\":\"prune_decision\""));
        let back: SearchEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn multi_observer_fans_out_and_reports_enabled() {
        let a = Arc::new(RecordingObserver::new());
        let b = Arc::new(RecordingObserver::new());
        let multi = MultiObserver::new()
            .with(a.clone() as Arc<dyn Observer>)
            .with(b.clone() as Arc<dyn Observer>);
        assert!(multi.enabled());
        multi.on_event(&SearchEvent::BudgetTick { iterations: 3 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        let empty = MultiObserver::new();
        assert!(!empty.enabled());
        let noop_only = MultiObserver::new().with(Arc::new(NoopObserver));
        assert!(!noop_only.enabled());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(4); // bucket 2
        h.record(1024); // bucket 10
        let snap = h.snapshot();
        assert_eq!(snap[0], 2);
        assert_eq!(snap[1], 2);
        assert_eq!(snap[2], 1);
        assert_eq!(snap[10], 1);
        assert_eq!(snap.len(), 11);
    }

    #[test]
    fn observe_kernel_skips_disabled_observers() {
        let rec = RecordingObserver::new();
        let got = observe_kernel(&NoopObserver, DecompMode::Normal, || 7);
        assert_eq!(got, 7);
        let got = observe_kernel(&rec, DecompMode::Bto, || 9);
        assert_eq!(got, 9);
        let ev = rec.events();
        assert_eq!(ev.len(), 1);
        assert!(matches!(
            ev[0],
            SearchEvent::KernelInvocation {
                mode: DecompMode::Bto,
                ..
            }
        ));
    }

    #[test]
    fn jsonl_writer_emits_one_line_per_event() {
        let writer = JsonlTraceWriter::new(Vec::new());
        for e in sample_events() {
            writer.on_event(&e);
        }
        assert_eq!(writer.lines(), sample_events().len() as u64);
    }
}
