//! Parameter bundles for the search algorithms.
//!
//! `paper()` constructors return the exact values of the paper's §V
//! experimental setup; `fast()` constructors return reduced values that
//! preserve the algorithms' behaviour at a fraction of the runtime (used
//! by tests, examples, and the default harness runs on small machines).

use dalut_decomp::{LsbFill, OptParams};
use serde::{Deserialize, Serialize};

/// Parameters shared by the DALTA baseline and BS-SA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Bound-set size `b` (the paper uses 9 for 16-input functions).
    pub bound_size: usize,
    /// Number of optimisation rounds `R` (paper: 5).
    pub rounds: usize,
    /// Number of random initial pattern vectors `Z` per `OptForPart`
    /// (paper: 30).
    pub initial_patterns: usize,
    /// Worker threads used to evaluate candidate partitions in parallel
    /// (the paper uses 44; results are thread-count independent for DALTA
    /// and for BS-SA with one SA process).
    pub threads: usize,
    /// RNG seed; every run is fully determined by it (given one thread).
    pub seed: u64,
}

impl SearchParams {
    /// The paper's setup: `b = 9`, `R = 5`, `Z = 30`.
    pub fn paper() -> Self {
        Self {
            bound_size: 9,
            rounds: 5,
            initial_patterns: 30,
            threads: 1,
            seed: 0,
        }
    }

    /// Reduced setup for fast runs and tests.
    pub fn fast() -> Self {
        Self {
            bound_size: 4,
            rounds: 2,
            initial_patterns: 6,
            threads: 1,
            seed: 0,
        }
    }

    /// The [`OptParams`] implied by these search parameters.
    pub fn opt_params(&self) -> OptParams {
        OptParams {
            restarts: self.initial_patterns,
            max_iters: 64,
        }
    }

    /// Returns a copy with a different seed (for repeated-run studies).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Parameters for the DALTA baseline algorithm (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaltaParams {
    /// Shared search parameters.
    pub search: SearchParams,
    /// Number of random candidate partitions `P` per bit per round
    /// (paper: 1000).
    pub partition_limit: usize,
}

impl DaltaParams {
    /// The paper's setup (`P = 1000`).
    pub fn paper() -> Self {
        Self {
            search: SearchParams::paper(),
            partition_limit: 1000,
        }
    }

    /// Reduced setup for fast runs and tests.
    pub fn fast() -> Self {
        Self {
            search: SearchParams::fast(),
            partition_limit: 12,
        }
    }
}

/// Parameters for the proposed BS-SA algorithm (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BsSaParams {
    /// Shared search parameters.
    pub search: SearchParams,
    /// Visited-partition limit `P` (paper: 500).
    pub partition_limit: usize,
    /// Beam width `N_beam` (paper: 3).
    pub beam_width: usize,
    /// Neighbours sampled per SA iteration `N_nb` (paper: 5).
    pub neighbors: usize,
    /// Initial SA temperature `τ0` (paper: 0.2).
    pub initial_temp: f64,
    /// Temperature decrease factor `α ∈ (0, 1)` (paper: 0.9).
    pub alpha: f64,
    /// Number of SA processes sharing one visited set `Φ` (the paper runs
    /// 10 concurrently to saturate its 44 threads).
    pub sa_processes: usize,
    /// Terminate a chain after this many successive iterations without a
    /// change to `Φ` (paper: 3).
    pub stall_limit: usize,
    /// How the not-yet-optimised LSBs are modelled in round 1: the
    /// paper's predictive model (§III-B) or DALTA's accurate fill
    /// (ablation knob).
    pub round1_fill: LsbFill,
}

impl BsSaParams {
    /// The paper's setup.
    pub fn paper() -> Self {
        Self {
            search: SearchParams::paper(),
            partition_limit: 500,
            beam_width: 3,
            neighbors: 5,
            initial_temp: 0.2,
            alpha: 0.9,
            sa_processes: 10,
            stall_limit: 3,
            round1_fill: LsbFill::Predictive,
        }
    }

    /// Reduced setup for fast runs and tests.
    pub fn fast() -> Self {
        Self {
            search: SearchParams::fast(),
            partition_limit: 8,
            beam_width: 2,
            neighbors: 3,
            initial_temp: 0.2,
            alpha: 0.9,
            sa_processes: 1,
            stall_limit: 3,
            round1_fill: LsbFill::Predictive,
        }
    }
}

/// Which reconfigurable architecture the search should configure, i.e.
/// which per-bit operating modes are available for mode selection
/// (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArchPolicy {
    /// DALTA's fixed architecture: every bit in normal mode.
    NormalOnly,
    /// BTO-Normal: a bit may gate off its free table when the BTO error is
    /// within `(1 + delta)` of the normal error.
    BtoNormal {
        /// Mode-selection factor `δ > 0` (paper: 0.01).
        delta: f64,
    },
    /// BTO-Normal-ND: additionally allows the non-disjoint mode when it
    /// improves the error by more than `δ` (and BTO is chosen only if ND
    /// would not improve by more than `δ'`).
    BtoNormalNd {
        /// Mode-selection factor `δ` (paper: 0.01).
        delta: f64,
        /// Mode-selection factor `δ' > δ` (paper: 0.1).
        delta_prime: f64,
    },
}

impl ArchPolicy {
    /// The paper's BTO-Normal policy (`δ = 0.01`).
    pub fn bto_normal_paper() -> Self {
        Self::BtoNormal { delta: 0.01 }
    }

    /// The paper's BTO-Normal-ND policy (`δ = 0.01`, `δ' = 0.1`).
    pub fn bto_normal_nd_paper() -> Self {
        Self::BtoNormalNd {
            delta: 0.01,
            delta_prime: 0.1,
        }
    }

    /// True if the BTO mode is available.
    pub fn allows_bto(&self) -> bool {
        !matches!(self, Self::NormalOnly)
    }

    /// True if the ND mode is available.
    pub fn allows_nd(&self) -> bool {
        matches!(self, Self::BtoNormalNd { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section_v() {
        let d = DaltaParams::paper();
        assert_eq!(d.search.bound_size, 9);
        assert_eq!(d.search.rounds, 5);
        assert_eq!(d.search.initial_patterns, 30);
        assert_eq!(d.partition_limit, 1000);

        let b = BsSaParams::paper();
        assert_eq!(b.partition_limit, 500);
        assert_eq!(b.beam_width, 3);
        assert_eq!(b.neighbors, 5);
        assert!((b.initial_temp - 0.2).abs() < 1e-12);
        assert!((b.alpha - 0.9).abs() < 1e-12);
        assert_eq!(b.sa_processes, 10);
    }

    #[test]
    fn policy_capabilities() {
        assert!(!ArchPolicy::NormalOnly.allows_bto());
        assert!(ArchPolicy::bto_normal_paper().allows_bto());
        assert!(!ArchPolicy::bto_normal_paper().allows_nd());
        assert!(ArchPolicy::bto_normal_nd_paper().allows_nd());
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let p = SearchParams::paper().with_seed(99);
        assert_eq!(p.seed, 99);
        assert_eq!(p.bound_size, SearchParams::paper().bound_size);
    }

    #[test]
    fn opt_params_reflect_initial_patterns() {
        let p = SearchParams::fast();
        assert_eq!(p.opt_params().restarts, p.initial_patterns);
    }
}
