//! Shared state for the SA processes: the visited-partition set `Φ` and
//! the bounded set of top settings `B_s`.

use dalut_decomp::Setting;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;

/// The set `Φ` of visited partitions with their stored errors, shared by
/// all SA processes of one `FindBestSettings` call (paper §V-A runs 10
/// processes against one `Φ`).
///
/// Partitions are keyed by their bound-set mask (`n` is fixed within one
/// call).
#[derive(Debug, Default)]
pub struct VisitedSet {
    map: RwLock<HashMap<u32, f64>>,
}

impl VisitedSet {
    /// An empty visited set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of visited partitions `|Φ|`.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if no partition has been visited.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// The stored error for a partition, if visited.
    pub fn get(&self, bound_mask: u32) -> Option<f64> {
        self.map.read().get(&bound_mask).copied()
    }

    /// Records a partition's error. Returns `true` if it was new.
    pub fn insert(&self, bound_mask: u32, error: f64) -> bool {
        self.map.write().insert(bound_mask, error).is_none()
    }

    /// The smallest error stored so far (`E*`), if any.
    pub fn best_error(&self) -> Option<f64> {
        self.map
            .read()
            .values()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).expect("errors are never NaN"))
    }
}

/// The bounded best-settings set `B_s`: keeps the `cap` settings with the
/// smallest errors, deduplicated by partition.
#[derive(Debug)]
pub struct TopSettings {
    cap: usize,
    inner: Mutex<Vec<Setting>>,
}

impl TopSettings {
    /// An empty set keeping at most `cap` settings.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be positive");
        Self {
            cap,
            inner: Mutex::new(Vec::with_capacity(cap + 1)),
        }
    }

    /// Offers a setting; it is kept if it ranks among the best `cap` and
    /// its partition is not already present with a better or equal error.
    pub fn offer(&self, setting: Setting) {
        let mut v = self.inner.lock();
        let mask = setting.decomp.partition().bound_mask();
        if let Some(pos) = v
            .iter()
            .position(|s| s.decomp.partition().bound_mask() == mask)
        {
            if v[pos].error <= setting.error {
                return;
            }
            v.remove(pos);
        }
        let at = v
            .binary_search_by(|s| {
                s.error
                    .partial_cmp(&setting.error)
                    .expect("errors are never NaN")
            })
            .unwrap_or_else(|e| e);
        v.insert(at, setting);
        v.truncate(self.cap);
    }

    /// The current contents, best first.
    pub fn snapshot(&self) -> Vec<Setting> {
        self.inner.lock().clone()
    }

    /// The best error currently held, if any.
    pub fn best_error(&self) -> Option<f64> {
        self.inner.lock().first().map(|s| s.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::Partition;
    use dalut_decomp::{AnyDecomp, BtoDecomp};

    fn setting(mask: u32, error: f64) -> Setting {
        let p = Partition::new(6, mask).unwrap();
        let b = BtoDecomp::new(p, vec![false; p.cols()]).unwrap();
        Setting::new(error, AnyDecomp::Bto(b))
    }

    #[test]
    fn visited_set_tracks_partitions() {
        let v = VisitedSet::new();
        assert!(v.is_empty());
        assert!(v.insert(0b000111, 1.5));
        assert!(!v.insert(0b000111, 2.0)); // already present
        assert!(v.insert(0b001011, 0.5));
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0b000111), Some(2.0));
        assert_eq!(v.get(0b110000), None);
        assert_eq!(v.best_error(), Some(0.5));
    }

    #[test]
    fn top_settings_keeps_best_sorted() {
        let t = TopSettings::new(2);
        t.offer(setting(0b000111, 3.0));
        t.offer(setting(0b001011, 1.0));
        t.offer(setting(0b001101, 2.0));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].error, 1.0);
        assert_eq!(snap[1].error, 2.0);
        assert_eq!(t.best_error(), Some(1.0));
    }

    #[test]
    fn top_settings_dedupes_by_partition() {
        let t = TopSettings::new(3);
        t.offer(setting(0b000111, 3.0));
        t.offer(setting(0b000111, 1.0)); // better duplicate replaces
        t.offer(setting(0b000111, 2.0)); // worse duplicate ignored
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].error, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn top_settings_rejects_zero_cap() {
        let _ = TopSettings::new(0);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let v = VisitedSet::new();
        crossbeam::scope(|s| {
            for t in 0..4u32 {
                let v = &v;
                s.spawn(move |_| {
                    for i in 0..100u32 {
                        v.insert(((t * 100 + i) % 150) + 1, f64::from(i));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(v.len(), 150);
    }
}
