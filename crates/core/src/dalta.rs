//! The DALTA baseline search (paper §II-B): greedy per-bit optimisation
//! over `P` randomly drawn partitions, for `R` rounds.

use crate::budget::{BudgetTimer, RunBudget};
use crate::config::{ApproxLutConfig, BitConfig};
use crate::error::DalutError;
use crate::observe::{observe_kernel, Observer, SearchEvent};
use crate::outcome::SearchOutcome;
use crate::parallel::try_run_tasks;
use crate::params::DaltaParams;
use crate::sa::DecompMode;
use dalut_boolfn::{metrics, BoolFnError, InputDistribution, Partition, TruthTable};
use dalut_decomp::{bit_costs, opt_for_part, AnyDecomp, LsbFill, OptParams, Setting};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Draws up to `limit` *distinct* random partitions of `n` variables with
/// bound size `b` (DALTA considers `P` random candidate partitions per
/// bit). Gives up growing the set once duplicates dominate, so small
/// variable counts where `C(n, b) < limit` still terminate.
pub(crate) fn draw_partitions(
    n: usize,
    b: usize,
    limit: usize,
    rng: &mut StdRng,
) -> Vec<Partition> {
    let mut seen = HashSet::with_capacity(limit);
    let mut out = Vec::with_capacity(limit);
    let mut misses = 0usize;
    while out.len() < limit && misses < 4 * limit + 64 {
        let p = Partition::random(n, b, rng);
        if seen.insert(p.bound_mask()) {
            out.push(p);
        } else {
            misses += 1;
        }
    }
    out
}

/// The DALTA baseline engine behind `ApproxLutBuilder`, with an
/// [`Observer`] attached.
///
/// Bits are optimised from the MSB down, for `R` rounds. In the first
/// round the not-yet-optimised LSBs are their accurate versions (DALTA's
/// model) — which is exactly what the running approximation holds, since
/// it starts as a copy of the target. For each bit, `P` random partitions
/// are evaluated with `OptForPart` (in parallel over
/// `params.search.threads` workers) and the best is kept greedily.
///
/// The budget is checked between per-bit optimisation steps only, so a
/// run that finishes within its budget is byte-identical to an
/// unbudgeted one (modulo `elapsed`). On a budget trip, bits the search
/// never reached get a cheap deterministic normal-mode fill, and the
/// outcome is whichever of {current state, best completed round} has the
/// lower true MED. Worker-task panics are isolated per candidate
/// partition: the failed candidates drop out of their bit's pool and the
/// run completes with [`Termination::TaskFailed`](crate::Termination).
pub(crate) fn dalta_engine(
    target: &TruthTable,
    dist: &InputDistribution,
    params: &DaltaParams,
    budget: &RunBudget,
    obs: &dyn Observer,
) -> Result<SearchOutcome, DalutError> {
    let timer = BudgetTimer::new(budget);
    let n = target.inputs();
    let m = target.outputs();
    let b = params.search.bound_size;
    if b == 0 || b >= n {
        return Err(DalutError::InvalidParams(format!(
            "bound size must satisfy 0 < b < n (got b = {b}, n = {n})"
        )));
    }
    target.check_same_shape(target).map_err(DalutError::from)?;
    if dist.inputs() != n {
        return Err(BoolFnError::DimensionMismatch(format!(
            "distribution over {} bits, function over {n}",
            dist.inputs()
        ))
        .into());
    }

    let mut rng = StdRng::seed_from_u64(params.search.seed);
    let mut approx = target.clone();
    let mut settings: Vec<Option<Setting>> = vec![None; m];
    let mut round_meds = Vec::with_capacity(params.search.rounds);
    let opt = params.search.opt_params();
    obs.on_event(&SearchEvent::SearchStarted {
        algorithm: "dalta".into(),
        inputs: n,
        outputs: m,
        rounds: params.search.rounds,
        seed: params.search.seed,
    });
    obs.on_event(&SearchEvent::PhaseStarted {
        phase: "greedy".into(),
    });
    // Best completed round so far, for budget-trip fallback.
    let mut snapshot: Option<(Vec<Option<Setting>>, f64)> = None;

    'rounds: for round in 0..params.search.rounds {
        for k in (0..m).rev() {
            if timer.exhausted() {
                break 'rounds;
            }
            let costs = bit_costs(target, &approx, k, dist, LsbFill::FromApprox)?;
            let partitions = draw_partitions(n, b, params.partition_limit, &mut rng);
            // Pre-derive per-task seeds so the result is independent of
            // the worker count.
            let seeds: Vec<u64> = (0..partitions.len())
                .map(|i| {
                    params
                        .search
                        .seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
                })
                .collect();
            let tasks: Vec<_> = partitions
                .iter()
                .zip(&seeds)
                .map(|(&p, &s)| {
                    let costs = &costs;
                    move || {
                        let mut trng = StdRng::seed_from_u64(s);
                        // Invariant, not fallible: partitions are drawn over
                        // the same n the cost table was built for.
                        observe_kernel(obs, DecompMode::Normal, || {
                            opt_for_part(costs, p, opt, &mut trng)
                                .expect("partition width validated at run_dalta entry")
                        })
                    }
                })
                .collect();
            let task_count = tasks.len();
            let results = try_run_tasks(tasks, params.search.threads);
            let mut failed = 0usize;
            let survivors = results.into_iter().filter_map(|slot| match slot {
                Ok(v) => Some(v),
                Err(_) => {
                    timer.note_task_failure();
                    failed += 1;
                    None
                }
            });
            let best =
                survivors.min_by(|a, b| a.0.partial_cmp(&b.0).expect("errors are never NaN"));
            obs.on_event(&SearchEvent::TaskBatch {
                tasks: task_count,
                threads: params.search.threads,
                failed,
            });
            // If every candidate's task panicked, the bit keeps its
            // incumbent setting (from an earlier round, or the fill below).
            if let Some((err, best)) = best {
                approx.set_bit_column(k, &best.to_bit_column());
                settings[k] = Some(Setting::new(err, AnyDecomp::Normal(best)));
            }
            timer.count_iteration();
            obs.on_event(&SearchEvent::BudgetTick {
                iterations: timer.iterations(),
            });
        }
        let med = metrics::med(target, &approx, dist)?;
        round_meds.push(med);
        obs.on_event(&SearchEvent::RoundFinished {
            round: round + 1,
            med,
        });
        if snapshot.as_ref().is_none_or(|(_, sm)| med <= *sm) {
            snapshot = Some((settings.clone(), med));
        }
    }
    obs.on_event(&SearchEvent::PhaseFinished {
        phase: "greedy".into(),
    });

    // On early termination: complete any never-reached bit with a cheap
    // deterministic decomposition, then fall back to the best completed
    // round if it beats the current state. Never taken on the completed
    // path.
    if timer.exhausted() {
        let fill_part = Partition::new(n, (1u32 << b) - 1)
            .map_err(|e| DalutError::InvalidParams(format!("fill partition: {e}")))?;
        let fill_opt = OptParams {
            restarts: 0,
            max_iters: 16,
        };
        for (k, slot) in settings.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let costs = bit_costs(target, &approx, k, dist, LsbFill::FromApprox)?;
            let mut frng = StdRng::seed_from_u64(0);
            let (err, d) = observe_kernel(obs, DecompMode::Normal, || {
                opt_for_part(&costs, fill_part, fill_opt, &mut frng)
            })?;
            approx.set_bit_column(k, &d.to_bit_column());
            *slot = Some(Setting::new(err, AnyDecomp::Normal(d)));
        }
        let med_now = metrics::med(target, &approx, dist)?;
        match snapshot {
            Some((snap, sm)) if sm < med_now && snap.iter().all(Option::is_some) => {
                settings = snap;
            }
            _ => {}
        }
    }

    let bits = settings
        .into_iter()
        .enumerate()
        .map(|(bit, s)| {
            let s = s.expect("every bit optimised or filled by now");
            BitConfig::from_setting(bit, s)
        })
        .collect();
    let config = ApproxLutConfig::new(n, m, bits)?;
    let med = config.med(target, dist)?;
    if timer.termination().is_early() && round_meds.last() != Some(&med) {
        // Keep the `med == round_meds.last()` invariant on early exits too.
        round_meds.push(med);
    }
    obs.on_event(&SearchEvent::SearchFinished {
        med,
        iterations: timer.iterations(),
        termination: timer.termination(),
    });
    Ok(SearchOutcome {
        config,
        med,
        round_meds,
        elapsed: timer.elapsed(),
        mode_options: None,
        termination: timer.termination(),
        iterations: timer.iterations(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ApproxLutBuilder;
    use dalut_boolfn::builder::random_table;

    fn problem(seed: u64, n: usize, m: usize) -> (TruthTable, InputDistribution) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            random_table(n, m, &mut rng).unwrap(),
            InputDistribution::uniform(n).unwrap(),
        )
    }

    // Thin builder wrapper so the tests below read like the old
    // free-function call sites.
    fn run_dalta(
        target: &TruthTable,
        dist: &InputDistribution,
        params: &DaltaParams,
    ) -> Result<SearchOutcome, DalutError> {
        ApproxLutBuilder::new(target)
            .distribution(dist.clone())
            .dalta(*params)
            .run()
    }

    #[test]
    fn dalta_produces_valid_outcome() {
        let (g, d) = problem(1, 6, 3);
        let out = run_dalta(&g, &d, &DaltaParams::fast()).unwrap();
        assert_eq!(out.config.outputs(), 3);
        assert_eq!(out.round_meds.len(), DaltaParams::fast().search.rounds);
        // Reported MED matches an independent recomputation.
        assert!((out.config.med(&g, &d).unwrap() - out.med).abs() < 1e-12);
        // All bits are normal mode (DALTA has no reconfiguration).
        assert_eq!(out.config.mode_counts().0, 0);
        assert_eq!(out.config.mode_counts().2, 0);
    }

    #[test]
    fn dalta_is_deterministic_given_seed() {
        let (g, d) = problem(2, 6, 3);
        let a = run_dalta(&g, &d, &DaltaParams::fast()).unwrap();
        let b = run_dalta(&g, &d, &DaltaParams::fast()).unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.med, b.med);
    }

    #[test]
    fn dalta_med_not_worse_with_more_partitions() {
        // More candidate partitions can only improve the greedy choice in
        // round 1; across rounds this is a strong-but-useful smoke check
        // on these fixed seeds.
        let (g, d) = problem(3, 6, 2);
        let mut small = DaltaParams::fast();
        small.partition_limit = 2;
        let mut large = DaltaParams::fast();
        large.partition_limit = 14;
        let e_small = run_dalta(&g, &d, &small).unwrap().med;
        let e_large = run_dalta(&g, &d, &large).unwrap().med;
        assert!(
            e_large <= e_small + 0.5,
            "large {e_large} vs small {e_small}"
        );
    }

    #[test]
    fn dalta_exact_on_decomposable_target() {
        // A function whose every output bit is exactly decomposable under
        // some b-sized partition should be approximated with zero MED once
        // that partition is among the candidates (exhaustive for n = 5,
        // b = 2: C(5,2) = 10 partitions).
        let mut rng = StdRng::seed_from_u64(9);
        let bit0 = dalut_boolfn::builder::random_decomposable(5, 0b00011, &mut rng).unwrap();
        let bit1 = dalut_boolfn::builder::random_decomposable(5, 0b01100, &mut rng).unwrap();
        let g = TruthTable::from_fn(5, 2, |x| bit0.eval(x) | (bit1.eval(x) << 1)).unwrap();
        let d = InputDistribution::uniform(5).unwrap();
        let mut params = DaltaParams::fast();
        params.search.bound_size = 2;
        params.partition_limit = 10;
        let out = run_dalta(&g, &d, &params).unwrap();
        assert!(out.med < 1e-12, "med = {}", out.med);
    }

    #[test]
    fn dalta_rejects_wrong_distribution_width() {
        let (g, _) = problem(4, 6, 2);
        let d = InputDistribution::uniform(5).unwrap();
        assert!(run_dalta(&g, &d, &DaltaParams::fast()).is_err());
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let (g, d) = problem(5, 6, 2);
        let mut p1 = DaltaParams::fast();
        p1.search.threads = 1;
        let mut p4 = DaltaParams::fast();
        p4.search.threads = 4;
        let a = run_dalta(&g, &d, &p1).unwrap();
        let b = run_dalta(&g, &d, &p4).unwrap();
        assert_eq!(a.config, b.config);
    }

    #[test]
    fn draw_partitions_caps_at_population() {
        let mut rng = StdRng::seed_from_u64(0);
        // C(4, 2) = 6 possible partitions.
        let ps = draw_partitions(4, 2, 100, &mut rng);
        assert_eq!(ps.len(), 6);
        let distinct: HashSet<_> = ps.iter().map(|p| p.bound_mask()).collect();
        assert_eq!(distinct.len(), 6);
    }
}
