//! Post-search error analysis: where does a configuration's MED come
//! from, bit by bit?
//!
//! The MED is not a per-bit additive quantity (bit errors interact
//! through `|Bin(G) − Bin(Ĝ)|`), but two per-bit views are exact and
//! actionable:
//!
//! * the **flip rate** of each output bit (how often its decomposition
//!   is wrong), and
//! * the **marginal MED** of each bit — the MED obtained by making *only*
//!   that bit approximate and keeping every other bit accurate, which is
//!   `flip_rate · 2^bit` exactly;
//!
//! plus the **leave-one-out repair gain** — how much the total MED drops
//! if that single bit is restored to accuracy.

use crate::config::{ApproxLutConfig, BitMode};
use dalut_boolfn::{metrics, BoolFnError, InputDistribution, TruthTable};
use serde::{Deserialize, Serialize};

/// Per-bit error diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitErrorReport {
    /// Output bit index.
    pub bit: usize,
    /// Operating mode of the bit.
    pub mode: BitMode,
    /// Probability that this bit's decomposition disagrees with the
    /// accurate bit.
    pub flip_rate: f64,
    /// MED if only this bit were approximate: `flip_rate * 2^bit`.
    pub marginal_med: f64,
    /// Total MED reduction if this bit alone were repaired to accurate.
    pub repair_gain: f64,
}

/// Full configuration diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBreakdown {
    /// The configuration's total MED.
    pub total_med: f64,
    /// Per-bit diagnostics, ascending by bit.
    pub bits: Vec<BitErrorReport>,
}

impl ErrorBreakdown {
    /// The bit whose repair would reduce the MED the most, if any bit
    /// has a positive repair gain.
    pub fn dominant_bit(&self) -> Option<usize> {
        self.bits
            .iter()
            .max_by(|a, b| {
                a.repair_gain
                    .partial_cmp(&b.repair_gain)
                    .expect("gains never NaN")
            })
            .filter(|r| r.repair_gain > 0.0)
            .map(|r| r.bit)
    }
}

/// Computes the per-bit error breakdown of `config` against `target`.
///
/// # Errors
///
/// Returns an error on dimension mismatch.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{InputDistribution, TruthTable};
/// use dalut_core::{error_breakdown, ApproxLutBuilder, BsSaParams};
///
/// let g = TruthTable::from_fn(6, 3, |x| x % 8).unwrap();
/// let dist = InputDistribution::uniform(6).unwrap();
/// let outcome = ApproxLutBuilder::new(&g).bs_sa(BsSaParams::fast()).run().unwrap();
/// let breakdown = error_breakdown(&outcome.config, &g, &dist).unwrap();
/// assert_eq!(breakdown.bits.len(), 3);
/// assert!((breakdown.total_med - outcome.med).abs() < 1e-12);
/// ```
pub fn error_breakdown(
    config: &ApproxLutConfig,
    target: &TruthTable,
    dist: &InputDistribution,
) -> Result<ErrorBreakdown, BoolFnError> {
    let approx = config.to_truth_table();
    let total_med = metrics::med(target, &approx, dist)?;
    let mut bits = Vec::with_capacity(config.outputs());
    for bc in config.bits() {
        let flip_rate = metrics::bit_flip_rate(target, &approx, dist, bc.bit)?;
        // Repair: restore this bit to accurate, keep the others approximate.
        let repaired = approx.with_bit_replaced(bc.bit, |x| target.output_bit(bc.bit, x));
        let repaired_med = metrics::med(target, &repaired, dist)?;
        bits.push(BitErrorReport {
            bit: bc.bit,
            mode: bc.mode(),
            flip_rate,
            marginal_med: flip_rate * f64::from(1u32 << bc.bit),
            repair_gain: total_med - repaired_med,
        });
    }
    Ok(ErrorBreakdown { total_med, bits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ArchPolicy, BsSaParams};
    use dalut_boolfn::builder::random_table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (TruthTable, InputDistribution, ApproxLutConfig) {
        let mut rng = StdRng::seed_from_u64(21);
        let g = random_table(6, 4, &mut rng).unwrap();
        let d = InputDistribution::uniform(6).unwrap();
        let out = crate::pipeline::ApproxLutBuilder::new(&g)
            .distribution(d.clone())
            .bs_sa(BsSaParams::fast())
            .policy(ArchPolicy::NormalOnly)
            .run()
            .unwrap();
        (g, d, out.config)
    }

    #[test]
    fn breakdown_covers_every_bit() {
        let (g, d, cfg) = fixture();
        let br = error_breakdown(&cfg, &g, &d).unwrap();
        assert_eq!(br.bits.len(), 4);
        for (i, b) in br.bits.iter().enumerate() {
            assert_eq!(b.bit, i);
            assert!((0.0..=1.0).contains(&b.flip_rate));
            assert!(b.marginal_med >= 0.0);
        }
    }

    #[test]
    fn marginal_med_is_flip_rate_times_weight() {
        let (g, d, cfg) = fixture();
        let br = error_breakdown(&cfg, &g, &d).unwrap();
        for b in &br.bits {
            // Verify the identity directly: splice only this bit into the
            // accurate function.
            let only_this = g.with_bit_replaced(b.bit, |x| cfg.bits()[b.bit].decomp.eval_bit(x));
            let med = metrics::med(&g, &only_this, &d).unwrap();
            assert!(
                (med - b.marginal_med).abs() < 1e-12,
                "bit {}: {med} vs {}",
                b.bit,
                b.marginal_med
            );
        }
    }

    #[test]
    fn repair_gains_are_bounded_by_total() {
        let (g, d, cfg) = fixture();
        let br = error_breakdown(&cfg, &g, &d).unwrap();
        for b in &br.bits {
            assert!(b.repair_gain <= br.total_med + 1e-12);
        }
    }

    #[test]
    fn exact_config_has_zero_everything() {
        // Build a config that is exactly the target.
        use crate::config::BitConfig;
        use dalut_decomp::{AnyDecomp, BtoDecomp};
        let p = dalut_boolfn::Partition::new(4, 0b0011).unwrap();
        let bto = BtoDecomp::new(p, vec![false, true, true, false]).unwrap();
        let cfg = ApproxLutConfig::new(
            4,
            1,
            vec![BitConfig {
                bit: 0,
                decomp: AnyDecomp::Bto(bto.clone()),
                expected_error: 0.0,
            }],
        )
        .unwrap();
        let target = cfg.to_truth_table();
        let d = InputDistribution::uniform(4).unwrap();
        let br = error_breakdown(&cfg, &target, &d).unwrap();
        assert_eq!(br.total_med, 0.0);
        assert_eq!(br.bits[0].flip_rate, 0.0);
        assert!(br.dominant_bit().is_none());
    }

    #[test]
    fn dominant_bit_has_max_gain() {
        let (g, d, cfg) = fixture();
        let br = error_breakdown(&cfg, &g, &d).unwrap();
        if let Some(dom) = br.dominant_bit() {
            let max = br
                .bits
                .iter()
                .map(|b| b.repair_gain)
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(br.bits[dom].repair_gain, max);
        }
    }
}
