//! The unified error taxonomy for the search layer.
//!
//! Searches touch three fallible layers — truth-table metrics
//! ([`BoolFnError`]), decomposition kernels
//! ([`DecompError`](dalut_decomp::DecompError)), and the parallel task
//! runner ([`TaskPanic`](crate::parallel::TaskPanic)) — plus their own
//! parameter validation. [`DalutError`] wraps all four so callers match
//! one type.

use crate::parallel::TaskPanic;
use dalut_boolfn::BoolFnError;
use dalut_decomp::DecompError;
use std::fmt;

/// Any error the search layer can produce.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DalutError {
    /// A truth-table or metric operation failed (shape mismatch, bad
    /// distribution, ...).
    BoolFn(BoolFnError),
    /// A decomposition kernel rejected its inputs.
    Decomp(DecompError),
    /// Search parameters are invalid for the given target (e.g. a bound
    /// size that is not smaller than the input count).
    InvalidParams(String),
    /// A worker task panicked and exhausted its retries.
    Task(TaskPanic),
    /// A [`JobSpec`](crate::JobSpec) could not be resolved or realised
    /// (unknown benchmark name, mismatched weight vector, unresolved
    /// function source where a table is required).
    Spec(String),
    /// An I/O operation failed (unreachable server, connection lost
    /// mid-run, unwritable output). Carries the rendered `io::Error`
    /// text so the taxonomy stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for DalutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BoolFn(e) => write!(f, "boolean-function error: {e}"),
            Self::Decomp(e) => write!(f, "decomposition error: {e}"),
            Self::InvalidParams(msg) => write!(f, "invalid search parameters: {msg}"),
            Self::Task(e) => write!(f, "worker task failed: {e}"),
            Self::Spec(msg) => write!(f, "invalid job spec: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for DalutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::BoolFn(e) => Some(e),
            Self::Decomp(e) => Some(e),
            Self::Task(e) => Some(e),
            Self::InvalidParams(_) | Self::Spec(_) | Self::Io(_) => None,
        }
    }
}

impl From<std::io::Error> for DalutError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl From<BoolFnError> for DalutError {
    fn from(e: BoolFnError) -> Self {
        Self::BoolFn(e)
    }
}

impl From<DecompError> for DalutError {
    fn from(e: DecompError) -> Self {
        Self::Decomp(e)
    }
}

impl From<TaskPanic> for DalutError {
    fn from(e: TaskPanic) -> Self {
        Self::Task(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_identify_the_layer() {
        let e: DalutError = BoolFnError::DimensionMismatch("w".into()).into();
        assert!(e.to_string().starts_with("boolean-function error:"));
        let e = DalutError::InvalidParams("bound size 9 >= 8 inputs".into());
        assert!(e.to_string().contains("bound size 9"));
        let e: DalutError = DecompError::WidthMismatch {
            costs: 5,
            partition: 6,
        }
        .into();
        assert!(e.to_string().starts_with("decomposition error:"));
    }

    #[test]
    fn sources_chain_to_the_wrapped_error() {
        use std::error::Error as _;
        let e: DalutError = DecompError::BoundTooLarge {
            cols: 32,
            limit: 20,
        }
        .into();
        assert!(e.source().is_some());
        assert!(DalutError::InvalidParams("x".into()).source().is_none());
    }
}
