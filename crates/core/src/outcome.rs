//! Result types shared by the search algorithms.

use crate::budget::Termination;
use crate::config::ApproxLutConfig;
use dalut_decomp::Setting;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The per-bit mode alternatives discovered in the final optimisation
/// round: the best setting for each available operating mode. Used for
/// mode selection and for sweeping accuracy–energy trade-offs (Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitModeOptions {
    /// Output bit index.
    pub bit: usize,
    /// Best normal-mode setting.
    pub normal: Setting,
    /// Best BTO-mode setting (if the policy allowed BTO).
    pub bto: Option<Setting>,
    /// Best ND-mode setting (if the policy allowed ND).
    pub nd: Option<Setting>,
}

/// The result of running a search algorithm on one target function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The chosen per-bit configuration.
    pub config: ApproxLutConfig,
    /// The true MED of `config` against the target (not the search's
    /// internal estimate).
    pub med: f64,
    /// True MED measured after each completed round (round 1 first).
    pub round_meds: Vec<f64>,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Final-round per-bit mode alternatives, when the search evaluated
    /// them (BS-SA with a BTO/ND-capable policy).
    pub mode_options: Option<Vec<BitModeOptions>>,
    /// Why the search returned: ran to completion, hit its
    /// [`RunBudget`](crate::budget::RunBudget), was cancelled, or lost
    /// worker tasks to panics. Early-terminated outcomes still carry a
    /// complete, valid best-so-far configuration.
    #[serde(default)]
    pub termination: Termination,
    /// Budget iterations the search consumed (the same unit
    /// [`RunBudget::with_max_iterations`](crate::budget::RunBudget::with_max_iterations)
    /// caps): chain steps for BS-SA's SA phase, per-bit rounds for the
    /// beam/DALTA phases.
    #[serde(default)]
    pub iterations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BitConfig;
    use dalut_boolfn::Partition;
    use dalut_decomp::{AnyDecomp, BtoDecomp};

    #[test]
    fn outcome_serde_round_trip() {
        let p = Partition::new(4, 0b0011).unwrap();
        let mk = |bit| BitConfig {
            bit,
            decomp: AnyDecomp::Bto(BtoDecomp::new(p, vec![false; 4]).unwrap()),
            expected_error: 0.25,
        };
        let outcome = SearchOutcome {
            config: ApproxLutConfig::new(4, 2, vec![mk(0), mk(1)]).unwrap(),
            med: 0.5,
            round_meds: vec![0.7, 0.5],
            elapsed: Duration::from_millis(12),
            mode_options: None,
            termination: Termination::Completed,
            iterations: 9,
        };
        let json = serde_json::to_string(&outcome).unwrap();
        let back: SearchOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(outcome, back);
    }
}
