//! The four non-continuous benchmarks (AxBench-style): each 16-bit input
//! is the concatenation of two 8-bit operands of the original function,
//! exactly as the paper prepares them (§V, Table I). Widths are
//! parameterised so reduced-scale runs use the same code path.

use crate::brent_kung::brent_kung_add;
use dalut_boolfn::{BoolFnError, TruthTable};

/// Robot-arm link lengths used by the kinematics benchmarks (both 0.5, so
/// the reachable workspace is the unit disc).
pub const LINK1: f64 = 0.5;
/// Second link length.
pub const LINK2: f64 = 0.5;

fn split_operands(x: u32, half: usize) -> (u32, u32) {
    let mask = (1u32 << half) - 1;
    (x & mask, (x >> half) & mask)
}

/// Operand code → real value in `[lo, hi]`.
fn dequant(code: u32, half: usize, lo: f64, hi: f64) -> f64 {
    let steps = ((1u64 << half) - 1) as f64;
    lo + (hi - lo) * (code as f64) / steps
}

/// Real value in `[lo, hi]` → code of `bits` bits (round, clamp).
fn quant(v: f64, bits: usize, lo: f64, hi: f64) -> u32 {
    let max_code = ((1u64 << bits) - 1) as f64;
    (((v - lo) / (hi - lo)) * max_code)
        .round()
        .clamp(0.0, max_code) as u32
}

/// The Brent–Kung adder benchmark: `2·half`-bit input (two stitched
/// operands), `(half + 1)`-bit output. The paper's instance is
/// `half = 8` → 16 in / 9 out.
///
/// # Errors
///
/// Returns an error if the widths fall outside the supported range.
pub fn brent_kung_table(half: usize) -> Result<TruthTable, BoolFnError> {
    TruthTable::from_fn(2 * half, half + 1, |x| {
        let (a, b) = split_operands(x, half);
        brent_kung_add(a, b, half)
    })
}

/// The unsigned array-multiplier benchmark: `2·half`-bit input, `2·half`-
/// bit output (`half = 8` → 16 in / 16 out in the paper).
///
/// # Errors
///
/// Returns an error if the widths fall outside the supported range.
pub fn multiplier_table(half: usize) -> Result<TruthTable, BoolFnError> {
    TruthTable::from_fn(2 * half, 2 * half, |x| {
        let (a, b) = split_operands(x, half);
        a * b
    })
}

/// Forward kinematics of a 2-joint arm (`forwardk2j`): the two operands
/// are joint angles `θ1, θ2 ∈ [0, π/2]`; the output is the end-effector
/// `x` coordinate `l1·cos(θ1) + l2·cos(θ1 + θ2) ∈ [−l2, l1 + l2]`,
/// quantised to `2·half` bits.
///
/// # Errors
///
/// Returns an error if the widths fall outside the supported range.
pub fn forwardk2j_table(half: usize) -> Result<TruthTable, BoolFnError> {
    use std::f64::consts::FRAC_PI_2;
    TruthTable::from_fn(2 * half, 2 * half, |code| {
        let (c1, c2) = split_operands(code, half);
        let t1 = dequant(c1, half, 0.0, FRAC_PI_2);
        let t2 = dequant(c2, half, 0.0, FRAC_PI_2);
        let x = LINK1 * t1.cos() + LINK2 * (t1 + t2).cos();
        quant(x, 2 * half, -LINK2, LINK1 + LINK2)
    })
}

/// Inverse kinematics of a 2-joint arm (`inversek2j`): the two operands
/// are a target point `(x, y) ∈ [0, 1]²`; the output stitches the two
/// joint angles: `θ1` quantised to `half` bits over `[−π, π]` and `θ2`
/// over `[0, π]`.
/// Unreachable targets clamp the elbow-angle cosine, which makes the
/// function non-continuous — the very case Taylor-based approximate LUTs
/// cannot handle and decomposition can (paper §I).
///
/// # Errors
///
/// Returns an error if the widths fall outside the supported range.
pub fn inversek2j_table(half: usize) -> Result<TruthTable, BoolFnError> {
    use std::f64::consts::PI;
    TruthTable::from_fn(2 * half, 2 * half, |code| {
        let (cx, cy) = split_operands(code, half);
        let x = dequant(cx, half, 0.0, 1.0);
        let y = dequant(cy, half, 0.0, 1.0);
        let d2 = x * x + y * y;
        let cos_t2 =
            ((d2 - LINK1 * LINK1 - LINK2 * LINK2) / (2.0 * LINK1 * LINK2)).clamp(-1.0, 1.0);
        let t2 = cos_t2.acos();
        let t1 = y.atan2(x) - (LINK2 * t2.sin()).atan2(LINK1 + LINK2 * t2.cos());
        let q1 = quant(t1.clamp(-PI, PI), half, -PI, PI);
        let q2 = quant(t2, half, 0.0, PI);
        q1 | (q2 << half)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_kung_table_is_addition() {
        let t = brent_kung_table(4).unwrap();
        assert_eq!(t.inputs(), 8);
        assert_eq!(t.outputs(), 5);
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(t.eval(a | (b << 4)), a + b);
            }
        }
    }

    #[test]
    fn multiplier_table_is_multiplication() {
        let t = multiplier_table(4).unwrap();
        assert_eq!(t.outputs(), 8);
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(t.eval(a | (b << 4)), a * b);
            }
        }
    }

    #[test]
    fn forwardk2j_endpoints() {
        let t = forwardk2j_table(4).unwrap();
        // θ1 = θ2 = 0 -> x = l1 + l2 = 1.0 -> max code.
        assert_eq!(t.eval(0), 255);
        // θ1 = θ2 = π/2 -> x = 0·l1... x = l1·cos(π/2) + l2·cos(π) = −0.5
        // -> min code.
        assert_eq!(t.eval(0xFF), 0);
    }

    #[test]
    fn forwardk2j_x_is_monotone_decreasing_in_theta1_at_zero_theta2() {
        let t = forwardk2j_table(4).unwrap();
        let mut prev = u32::MAX;
        for c1 in 0..16u32 {
            let v = t.eval(c1);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn inversek2j_round_trips_reachable_points() {
        use std::f64::consts::PI;
        let half = 6;
        let t = inversek2j_table(half).unwrap();
        // Pick reachable targets (inside the unit disc, away from edges),
        // decode the angles and check forward kinematics returns the
        // target within quantisation error.
        let steps = ((1u32 << half) - 1) as f64;
        for (x, y) in [(0.5, 0.5), (0.3, 0.6), (0.7, 0.2), (0.4, 0.4)] {
            let cx = (x * steps).round() as u32;
            let cy = (y * steps).round() as u32;
            let out = t.eval(cx | (cy << half));
            let q1 = out & ((1 << half) - 1);
            let q2 = out >> half;
            let t1 = -PI + 2.0 * PI * f64::from(q1) / steps;
            let t2 = PI * f64::from(q2) / steps;
            let fx = LINK1 * t1.cos() + LINK2 * (t1 + t2).cos();
            let fy = LINK1 * t1.sin() + LINK2 * (t1 + t2).sin();
            let tol = 4.0 / steps; // a few quantisation steps
            let xq = f64::from(cx) / steps;
            let yq = f64::from(cy) / steps;
            assert!(
                (fx - xq).abs() < tol && (fy - yq).abs() < tol,
                "target ({xq},{yq}) got ({fx},{fy})"
            );
        }
    }

    #[test]
    fn inversek2j_clamps_unreachable_points() {
        // (1, 1) is outside the unit disc; the function must still return
        // a well-defined clamped value (θ2 = 0, arm fully extended).
        let half = 6;
        let t = inversek2j_table(half).unwrap();
        let max = (1u32 << half) - 1;
        let out = t.eval(max | (max << half));
        let q2 = out >> half;
        assert_eq!(q2, 0, "fully stretched arm for unreachable target");
    }
}
