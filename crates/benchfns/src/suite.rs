//! The benchmark suite: the paper's ten functions with Table-I metadata.

use crate::{axbench, continuous};
use dalut_boolfn::{BoolFnError, TruthTable};
use serde::{Deserialize, Serialize};

/// Which scale to build a benchmark at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's scale: 16-bit inputs (continuous functions also have
    /// 16-bit outputs; non-continuous widths per Table I).
    Paper,
    /// Reduced scale with the given total input width (must be even and
    /// in `4..=16`); preserves every function's shape at lower cost.
    Reduced(usize),
}

impl Scale {
    /// Total input bits at this scale.
    pub fn input_bits(self) -> usize {
        match self {
            Scale::Paper => 16,
            Scale::Reduced(n) => n,
        }
    }

    fn validate(self) -> Result<usize, BoolFnError> {
        let n = self.input_bits();
        if !(4..=16).contains(&n) || !n.is_multiple_of(2) {
            return Err(BoolFnError::InputWidth(n));
        }
        Ok(n)
    }
}

/// One of the paper's ten benchmarks (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Cos,
    Tan,
    Exp,
    Ln,
    Erf,
    Denoise,
    BrentKung,
    Forwardk2j,
    Inversek2j,
    Multiplier,
}

impl Benchmark {
    /// All ten benchmarks in the paper's Table-II order.
    pub fn all() -> [Benchmark; 10] {
        use Benchmark::*;
        [
            Cos, Tan, Exp, Ln, Erf, Denoise, BrentKung, Forwardk2j, Inversek2j, Multiplier,
        ]
    }

    /// The lowercase name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::Cos => "cos",
            Self::Tan => "tan",
            Self::Exp => "exp",
            Self::Ln => "ln",
            Self::Erf => "erf",
            Self::Denoise => "denoise",
            Self::BrentKung => "Brent-Kung",
            Self::Forwardk2j => "Forwardk2j",
            Self::Inversek2j => "Inversek2j",
            Self::Multiplier => "Multiplier",
        }
    }

    /// True for the six continuous functions.
    pub fn is_continuous(self) -> bool {
        matches!(
            self,
            Self::Cos | Self::Tan | Self::Exp | Self::Ln | Self::Erf | Self::Denoise
        )
    }

    /// The domain string of Table I (continuous functions only).
    pub fn domain(self) -> Option<&'static str> {
        match self {
            Self::Cos => Some("[0, pi/2]"),
            Self::Tan => Some("[0, 2pi/5]"),
            Self::Exp => Some("[0, 3]"),
            Self::Ln => Some("[1, 10]"),
            Self::Erf => Some("[0, 3]"),
            Self::Denoise => Some("[0, 3]"),
            _ => None,
        }
    }

    /// The range string of Table I (continuous functions only).
    pub fn range(self) -> Option<&'static str> {
        match self {
            Self::Cos => Some("[0, 1]"),
            Self::Tan => Some("[0, 3.08]"),
            Self::Exp => Some("[0, 20.09]"),
            Self::Ln => Some("[0, 2.30]"),
            Self::Erf => Some("[0, 1]"),
            Self::Denoise => Some("[0, 0.81]"),
            _ => None,
        }
    }

    /// Output bits at the given scale (Table I: continuous functions and
    /// the stitched AxBench functions are 16-out except Brent-Kung's 9).
    pub fn output_bits(self, scale: Scale) -> usize {
        let n = scale.input_bits();
        match self {
            Self::BrentKung => n / 2 + 1,
            _ => n,
        }
    }

    /// Builds the benchmark's truth table at the given scale.
    ///
    /// # Errors
    ///
    /// Returns an error if the scale is invalid.
    pub fn table(self, scale: Scale) -> Result<TruthTable, BoolFnError> {
        let n = scale.validate()?;
        let half = n / 2;
        match self {
            Self::Cos => continuous::cos_table(n, n),
            Self::Tan => continuous::tan_table(n, n),
            Self::Exp => continuous::exp_table(n, n),
            Self::Ln => continuous::ln_table(n, n),
            Self::Erf => continuous::erf_table(n, n),
            Self::Denoise => continuous::denoise_table(n, n),
            Self::BrentKung => axbench::brent_kung_table(half),
            Self::Forwardk2j => axbench::forwardk2j_table(half),
            Self::Inversek2j => axbench::inversek2j_table(half),
            Self::Multiplier => axbench::multiplier_table(half),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::all()
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown benchmark '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_build_at_reduced_scale() {
        for b in Benchmark::all() {
            let t = b.table(Scale::Reduced(8)).unwrap();
            assert_eq!(t.inputs(), 8, "{b}");
            assert_eq!(t.outputs(), b.output_bits(Scale::Reduced(8)), "{b}");
        }
    }

    #[test]
    fn paper_scale_widths_match_table_i() {
        assert_eq!(Benchmark::BrentKung.output_bits(Scale::Paper), 9);
        for b in [
            Benchmark::Forwardk2j,
            Benchmark::Inversek2j,
            Benchmark::Multiplier,
            Benchmark::Cos,
        ] {
            assert_eq!(b.output_bits(Scale::Paper), 16);
        }
        assert_eq!(Scale::Paper.input_bits(), 16);
    }

    #[test]
    fn continuous_metadata_is_complete() {
        for b in Benchmark::all() {
            assert_eq!(b.domain().is_some(), b.is_continuous());
            assert_eq!(b.range().is_some(), b.is_continuous());
        }
        assert_eq!(
            Benchmark::all()
                .iter()
                .filter(|b| b.is_continuous())
                .count(),
            6
        );
    }

    #[test]
    fn scale_validation() {
        assert!(Benchmark::Cos.table(Scale::Reduced(5)).is_err()); // odd
        assert!(Benchmark::Cos.table(Scale::Reduced(2)).is_err()); // too small
        assert!(Benchmark::Cos.table(Scale::Reduced(18)).is_err()); // too big
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for b in Benchmark::all() {
            let parsed: Benchmark = b.name().parse().unwrap();
            assert_eq!(parsed, b);
            let parsed: Benchmark = b.name().to_uppercase().parse().unwrap();
            assert_eq!(parsed, b);
        }
        assert!("nonesuch".parse::<Benchmark>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::BrentKung.to_string(), "Brent-Kung");
    }
}
