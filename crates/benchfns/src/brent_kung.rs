//! A bit-level Brent–Kung parallel-prefix adder.
//!
//! The paper's `Brent-Kung` benchmark is the Boolean function of a
//! Brent–Kung adder: two `w`-bit operands in, a `(w+1)`-bit sum out. We
//! implement the actual prefix network (generate/propagate tree) rather
//! than `a + b`, so the structure the benchmark is named after is really
//! exercised — and then verify against plain addition in tests.

/// Computes `a + b` for `w`-bit operands through an explicit Brent–Kung
/// prefix network, returning the `(w + 1)`-bit sum.
///
/// # Panics
///
/// Panics if `w == 0`, `w > 16`, or an operand does not fit in `w` bits.
///
/// # Examples
///
/// ```
/// use dalut_benchfns::brent_kung::brent_kung_add;
/// assert_eq!(brent_kung_add(200, 100, 8), 300);
/// assert_eq!(brent_kung_add(255, 255, 8), 510);
/// ```
pub fn brent_kung_add(a: u32, b: u32, w: usize) -> u32 {
    assert!(w > 0 && w <= 16, "operand width out of range");
    let mask = (1u32 << w) - 1;
    assert!(a <= mask && b <= mask, "operand does not fit in width");

    // Bit-level generate and propagate.
    let mut g = [false; 17];
    let mut p = [false; 17];
    for i in 0..w {
        let ai = (a >> i) & 1 == 1;
        let bi = (b >> i) & 1 == 1;
        g[i] = ai && bi;
        p[i] = ai ^ bi;
    }

    // Group generate/propagate, (G, P) per node; prefix combine:
    // (G2, P2) ∘ (G1, P1) = (G2 | (P2 & G1), P2 & P1),
    // where the node covering higher bits is applied on the left.
    let mut gg = g;
    let mut gp = p;

    // Up-sweep (reduce): distance d = 1, 2, 4, ... combine index
    // i = k·2d + 2d − 1 with its partner at i − d.
    let mut d = 1usize;
    while d < w {
        let mut i = 2 * d - 1;
        while i < w {
            let (gh, ph) = (gg[i], gp[i]);
            let (gl, pl) = (gg[i - d], gp[i - d]);
            gg[i] = gh || (ph && gl);
            gp[i] = ph && pl;
            i += 2 * d;
        }
        d *= 2;
    }

    // Down-sweep: fill in the intermediate prefixes.
    d /= 2;
    while d >= 1 {
        let mut i = 3 * d - 1;
        while i < w {
            let (gh, ph) = (gg[i], gp[i]);
            let (gl, pl) = (gg[i - d], gp[i - d]);
            gg[i] = gh || (ph && gl);
            gp[i] = ph && pl;
            i += 2 * d;
        }
        if d == 1 {
            break;
        }
        d /= 2;
    }

    // Carries: c[0] = 0; c[i+1] = prefix generate of bits 0..=i.
    let mut sum = 0u32;
    let mut carry = false;
    for i in 0..w {
        let s = p[i] ^ carry;
        if s {
            sum |= 1 << i;
        }
        carry = gg[i];
    }
    if carry {
        sum |= 1 << w;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_plain_addition_exhaustively_small() {
        for w in 1..=6usize {
            let lim = 1u32 << w;
            for a in 0..lim {
                for b in 0..lim {
                    assert_eq!(brent_kung_add(a, b, w), a + b, "w={w} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn matches_plain_addition_sampled_8bit() {
        for a in 0..256u32 {
            for b in (0..256u32).step_by(7) {
                assert_eq!(brent_kung_add(a, b, 8), a + b);
            }
        }
    }

    #[test]
    fn carry_out_is_bit_w() {
        assert_eq!(brent_kung_add(0xFF, 0x01, 8), 0x100);
        assert_eq!(brent_kung_add(0xFFFF, 0xFFFF, 16), 0x1FFFE);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_operand() {
        let _ = brent_kung_add(256, 0, 8);
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn rejects_zero_width() {
        let _ = brent_kung_add(0, 0, 0);
    }
}
