//! # dalut-benchfns
//!
//! The ten benchmark functions of the DALUT paper (DATE 2023, Table I):
//! six continuous elementary functions (`cos`, `tan`, `exp`, `ln`, `erf`,
//! `denoise`) quantised to the paper's domains and ranges, and four
//! non-continuous AxBench-style arithmetic functions (a real Brent–Kung
//! prefix adder, 2-joint forward/inverse kinematics, and an 8×8
//! multiplier) whose 16-bit inputs stitch two 8-bit operands.
//!
//! All builders are width-parameterised: [`Scale::Paper`] reproduces the
//! paper's 16-bit tables, [`Scale::Reduced`] builds smaller instances of
//! the same functions for fast experimentation.
//!
//! ## Example
//!
//! ```
//! use dalut_benchfns::{Benchmark, Scale};
//!
//! let cos = Benchmark::Cos.table(Scale::Reduced(10)).unwrap();
//! assert_eq!(cos.inputs(), 10);
//! assert_eq!(cos.eval(0), 1023); // cos(0) = 1.0 at full scale
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod axbench;
pub mod brent_kung;
pub mod continuous;
pub mod math;
pub mod suite;

pub use suite::{Benchmark, Scale};
