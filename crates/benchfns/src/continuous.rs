//! The six continuous benchmarks (paper Table I): elementary functions
//! quantised with the domains and ranges the paper lists. The paper uses
//! 16-bit inputs and outputs; widths are parameters so reduced-scale runs
//! use the identical code path.

use crate::math;
use dalut_boolfn::builder::QuantizedFn;
use dalut_boolfn::{BoolFnError, TruthTable};
use std::f64::consts::{FRAC_PI_2, PI};

/// Builds the quantised `cos(x)` benchmark: domain `[0, π/2]`, range
/// `[0, 1]`.
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn cos_table(bits_in: usize, bits_out: usize) -> Result<TruthTable, BoolFnError> {
    QuantizedFn::new(bits_in, bits_out, 0.0, FRAC_PI_2, 0.0, 1.0).build(f64::cos)
}

/// `tan(x)`: domain `[0, 2π/5]`, range `[0, 3.08]`.
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn tan_table(bits_in: usize, bits_out: usize) -> Result<TruthTable, BoolFnError> {
    QuantizedFn::new(bits_in, bits_out, 0.0, 2.0 * PI / 5.0, 0.0, 3.08).build(f64::tan)
}

/// `exp(x)`: domain `[0, 3]`, range `[0, 20.09]`.
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn exp_table(bits_in: usize, bits_out: usize) -> Result<TruthTable, BoolFnError> {
    QuantizedFn::new(bits_in, bits_out, 0.0, 3.0, 0.0, 20.09).build(f64::exp)
}

/// `ln(x)`: domain `[1, 10]`, range `[0, 2.30]`.
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn ln_table(bits_in: usize, bits_out: usize) -> Result<TruthTable, BoolFnError> {
    QuantizedFn::new(bits_in, bits_out, 1.0, 10.0, 0.0, 2.30).build(f64::ln)
}

/// `erf(x)`: domain `[0, 3]`, range `[0, 1]`.
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn erf_table(bits_in: usize, bits_out: usize) -> Result<TruthTable, BoolFnError> {
    QuantizedFn::new(bits_in, bits_out, 0.0, 3.0, 0.0, 1.0).build(math::erf)
}

/// `denoise(x)`: domain `[0, 3]`, range `[0, 0.81]` (see
/// [`math::denoise`] for the documented substitution).
///
/// # Errors
///
/// Returns an error if widths are out of range.
pub fn denoise_table(bits_in: usize, bits_out: usize) -> Result<TruthTable, BoolFnError> {
    QuantizedFn::new(bits_in, bits_out, 0.0, 3.0, 0.0, 0.81).build(math::denoise)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cos_is_monotone_decreasing() {
        let t = cos_table(10, 10).unwrap();
        let mut prev = t.eval(0);
        assert_eq!(prev, 1023); // cos(0) = 1 -> full scale
        for x in 1..1024u32 {
            let v = t.eval(x);
            assert!(v <= prev);
            prev = v;
        }
        assert_eq!(t.eval(1023), 0); // cos(π/2) = 0
    }

    #[test]
    fn tan_spans_declared_range() {
        let t = tan_table(10, 10).unwrap();
        assert_eq!(t.eval(0), 0);
        // tan(2π/5) = 3.0776835; scaled by 3.08 it's code ≈ 1022.3.
        assert!(t.eval(1023) >= 1020);
    }

    #[test]
    fn exp_hits_both_ends() {
        let t = exp_table(12, 12).unwrap();
        // exp(0) = 1 of 20.09 -> code ≈ 204.
        let lo = t.eval(0);
        assert!((lo as i64 - 204).abs() <= 2, "exp(0) code {lo}");
        // exp(3) = 20.0855 of 20.09 -> nearly full scale.
        assert!(t.eval(4095) >= 4090);
    }

    #[test]
    fn ln_matches_at_known_points() {
        let t = ln_table(12, 12).unwrap();
        assert_eq!(t.eval(0), 0); // ln(1) = 0
                                  // ln(10) = 2.302585 vs range max 2.30 -> clamps to full scale.
        assert_eq!(t.eval(4095), 4095);
    }

    #[test]
    fn erf_covers_range() {
        let t = erf_table(10, 10).unwrap();
        assert_eq!(t.eval(0), 0);
        assert!(t.eval(1023) >= 1022); // erf(3) ≈ 0.99998
    }

    #[test]
    fn denoise_peaks_inside_domain() {
        let t = denoise_table(10, 10).unwrap();
        // Peak at x = 1, i.e. input code ≈ 1023/3.
        let peak_code = 1023 / 3;
        let peak = t.eval(peak_code);
        assert!(peak >= 1020, "peak {peak}");
        assert!(t.eval(0) < peak);
        assert!(t.eval(1023) < 40);
    }

    #[test]
    fn all_tables_build_at_paper_scale() {
        // 16-bit in / 16-bit out, as in the paper (smoke test: ~0.3 MB
        // each, must build without panicking).
        for f in [
            cos_table,
            tan_table,
            exp_table,
            ln_table,
            erf_table,
            denoise_table,
        ] {
            let t = f(16, 16).unwrap();
            assert_eq!(t.len(), 65536);
        }
    }
}
