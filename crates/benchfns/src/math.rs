//! Scalar math helpers for the benchmark functions.

/// Error function `erf(x)`, computed with the Abramowitz & Stegun 7.1.26
/// rational approximation (|error| ≤ 1.5e-7, far below the 16-bit
/// quantisation step used by the benchmarks).
///
/// # Examples
///
/// ```
/// use dalut_benchfns::math::erf;
/// assert!((erf(0.0)).abs() < 1e-7);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The `denoise` benchmark's scalar kernel.
///
/// ApproxLUT's original `denoise` has no published closed form; the paper
/// only documents its domain `[0, 3]` and range `[0, 0.81]`. We substitute
/// the smooth, non-monotonic Gaussian bump `0.81 · exp(−(x − 1)²)`, which
/// matches both bounds exactly (peak 0.81 at `x = 1`, ≈ 0 at the domain
/// edges); see DESIGN.md §3.
pub fn denoise(x: f64) -> f64 {
    0.81 * (-(x - 1.0) * (x - 1.0)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x})");
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = f64::from(i) * 0.05;
            // Odd by construction up to the approximation's tiny residual
            // at x = 0 (the A&S polynomial gives erf(0) ≈ 5e-10, not 0).
            assert!((erf(x) + erf(-x)).abs() < 1e-8);
            assert!(erf(x) >= 0.0 && erf(x) <= 1.0);
        }
    }

    #[test]
    fn erf_is_monotone() {
        let mut prev = erf(-4.0);
        for i in 1..200 {
            let v = erf(-4.0 + f64::from(i) * 0.04);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn denoise_matches_documented_domain_range() {
        // Peak 0.81 at x = 1; near zero at the edges; stays within range.
        assert!((denoise(1.0) - 0.81).abs() < 1e-12);
        assert!(denoise(0.0) < 0.81 && denoise(3.0) < 0.05);
        for i in 0..=300 {
            let x = f64::from(i) * 0.01;
            let y = denoise(x);
            assert!((0.0..=0.81).contains(&y));
        }
    }
}
