//! # dalut-client
//!
//! A fault-tolerant client for the `dalut-serve` line protocol: the
//! piece that turns a chaotic network into an at-most-annoying one.
//!
//! [`DalutClient::submit`] drives one job to completion through any
//! number of connection drops, corrupted lines, stalls and overload
//! sheds:
//!
//! * **Reconnection** — every retryable failure tears the connection
//!   down and dials again, resynchronising the line protocol (after a
//!   corrupted line, the only safe recovery point is a fresh hello).
//! * **Per-request timeout** — an attempt that produces no classifiable
//!   answer within [`ClientConfig::request_timeout`] is abandoned and
//!   retried.
//! * **Classification** — server rejects carry a typed
//!   [`RejectCode`](dalut_serve::RejectCode) and an explicit
//!   `retryable` flag; the client honours both, so an `invalid_spec`
//!   fails fast while an `overloaded` backs off and retries.
//! * **Capped, seeded backoff** — exponential from
//!   [`backoff_base_ms`](ClientConfig::backoff_base_ms), capped, with
//!   deterministic seed-derived jitter (a fleet of clients with
//!   distinct seeds desynchronises; a test with a fixed seed
//!   reproduces). A server `retry_after_ms` hint takes precedence when
//!   it is larger.
//! * **End-to-end verification** — the expected
//!   [`FunctionFingerprint`](dalut_core::FunctionFingerprint) is
//!   computed *locally* before submission; a result frame must match it
//!   AND carry a valid CRC-32 over `id|fingerprint|outcome` before its
//!   bytes are surfaced. A flipped byte anywhere in the response is a
//!   retry, never a wrong answer.
//! * **Idempotent resubmission** — the server's cache is keyed by
//!   fingerprint, so a retry of a job whose first attempt actually
//!   completed server-side is a free cache hit with byte-identical
//!   outcome bytes.
//!
//! The client is deliberately synchronous and single-request (one job
//! in flight per client; run several clients for parallelism), matching
//! the thread-per-connection server. Response parsing is the serve
//! crate's panic-free hand-rolled scanners, so a hostile byte stream
//! can never panic the client either.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use dalut_core::{JobSpec, NoResolver};
use dalut_serve::protocol::{escape_json, parse_error_frame, parse_result_frame};
use dalut_serve::{benchfns_resolver, RejectCode, SplitMix64};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How often blocked reads re-check their deadline.
const POLL: Duration = Duration::from_millis(25);

/// Connection and retry policy.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Fairness-bucket name sent with every submit (`None` uses the
    /// server's per-connection default).
    pub client_name: Option<String>,
    /// Deadline for dialling + reading the hello frame.
    pub connect_timeout: Duration,
    /// Deadline for one submit attempt to produce a classifiable
    /// answer. Size it to the search budget, not the network.
    pub request_timeout: Duration,
    /// Total attempts per [`submit`](DalutClient::submit) (first try
    /// included) before giving up with
    /// [`ClientError::RetriesExhausted`].
    pub max_attempts: u32,
    /// First backoff step; doubles per retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling (before jitter).
    pub backoff_cap_ms: u64,
    /// Seeds the jitter stream; distinct per client in a fleet.
    pub seed: u64,
}

impl ClientConfig {
    /// A sensible default policy against `addr`.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            client_name: None,
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(120),
            max_attempts: 8,
            backoff_base_ms: 50,
            backoff_cap_ms: 5_000,
            seed: 0,
        }
    }
}

/// Why an attempt (or a whole submit) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// Dial, write or read failure — the connection is gone.
    Io(String),
    /// The request deadline passed without a classifiable answer.
    Timeout,
    /// The server refused the job with a typed error frame.
    Rejected {
        /// The machine-readable cause, when recognised.
        code: Option<RejectCode>,
        /// The server's own retryability claim.
        retryable: bool,
        /// Back-off hint attached to overload sheds.
        retry_after_ms: Option<u64>,
        /// The human-readable message.
        message: String,
    },
    /// A response line failed verification: CRC mismatch, fingerprint
    /// mismatch, or an unclassifiable (corrupted) line.
    Corrupt(String),
    /// The spec failed local canonicalisation or serialisation —
    /// submitting it cannot help.
    Spec(String),
    /// Every attempt failed; carries the final attempt's error.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last failure.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Whether another attempt may succeed.
    #[must_use]
    pub fn retryable(&self) -> bool {
        match self {
            Self::Io(_) | Self::Timeout | Self::Corrupt(_) => true,
            Self::Rejected { retryable, .. } => *retryable,
            Self::Spec(_) | Self::RetriesExhausted { .. } => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "i/o failure: {msg}"),
            Self::Timeout => write!(f, "request timed out"),
            Self::Rejected { code, message, .. } => match code {
                Some(code) => write!(f, "rejected ({code}): {message}"),
                None => write!(f, "rejected: {message}"),
            },
            Self::Corrupt(msg) => write!(f, "corrupt response: {msg}"),
            Self::Spec(msg) => write!(f, "invalid spec: {msg}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// The fault class a retry recovered from, for chaos accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultClass {
    /// Connection refused, reset, or closed mid-exchange.
    ConnectionLost,
    /// No classifiable answer within the request deadline.
    Timeout,
    /// CRC/fingerprint mismatch or unclassifiable line.
    Corrupt,
    /// A retryable server reject (overload shed, drain, panic...).
    Rejected,
}

impl FaultClass {
    /// A stable lower-case name, used as a JSON key by `chaosbench`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::ConnectionLost => "connection_lost",
            Self::Timeout => "timeout",
            Self::Corrupt => "corrupt",
            Self::Rejected => "rejected",
        }
    }

    /// Every class, in report order.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [
            Self::ConnectionLost,
            Self::Timeout,
            Self::Corrupt,
            Self::Rejected,
        ]
    }
}

impl From<&ClientError> for FaultClass {
    fn from(e: &ClientError) -> Self {
        match e {
            ClientError::Timeout => Self::Timeout,
            ClientError::Corrupt(_) => Self::Corrupt,
            ClientError::Rejected { .. } => Self::Rejected,
            _ => Self::ConnectionLost,
        }
    }
}

/// A verified answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResult {
    /// The verbatim outcome JSON (CRC- and fingerprint-verified).
    pub outcome_json: String,
    /// Whether the server answered from its cache.
    pub cached: bool,
    /// The job fingerprint (32-hex), equal to the locally computed one.
    pub fingerprint: String,
    /// Attempts this submit took (1 = first try succeeded).
    pub attempts: u32,
    /// The fault class each retry recovered from, in order.
    pub retries: Vec<FaultClass>,
}

/// One open connection with its line buffer.
struct Conn {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Conn {
    /// Dials, arms socket timeouts and waits for the hello line.
    fn open(config: &ClientConfig) -> Result<Self, ClientError> {
        let io = |e: std::io::Error| ClientError::Io(e.to_string());
        let addr = config
            .addr
            .to_socket_addrs()
            .map_err(io)?
            .next()
            .ok_or_else(|| ClientError::Io(format!("{} resolves to nothing", config.addr)))?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout).map_err(io)?;
        stream.set_read_timeout(Some(POLL)).map_err(io)?;
        stream
            .set_write_timeout(Some(config.connect_timeout))
            .map_err(io)?;
        let mut conn = Self {
            stream,
            pending: Vec::new(),
        };
        let hello = conn.read_line(Instant::now() + config.connect_timeout)?;
        if !hello.trim_start().starts_with("{\"type\":\"hello\"") {
            return Err(ClientError::Corrupt(format!(
                "expected hello frame, got: {}",
                &hello[..hello.len().min(80)]
            )));
        }
        Ok(conn)
    }

    /// Sends one newline-terminated frame.
    fn send_line(&mut self, frame: &str) -> Result<(), ClientError> {
        let io = |e: std::io::Error| ClientError::Io(e.to_string());
        self.stream.write_all(frame.as_bytes()).map_err(io)?;
        self.stream.write_all(b"\n").map_err(io)?;
        self.stream.flush().map_err(io)
    }

    /// Reads the next complete line, or fails with `Timeout` at the
    /// deadline / `Io` on EOF and socket errors.
    fn read_line(&mut self, deadline: Instant) -> Result<String, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Io("connection closed by server".into())),
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn").finish_non_exhaustive()
    }
}

/// The reconnecting, retrying client. One job in flight at a time.
#[derive(Debug)]
pub struct DalutClient {
    config: ClientConfig,
    conn: Option<Conn>,
    rng: SplitMix64,
    next_id: u64,
}

impl DalutClient {
    /// A client over `config`; nothing is dialled until the first
    /// [`submit`](Self::submit).
    #[must_use]
    pub fn new(config: ClientConfig) -> Self {
        let rng = SplitMix64::new(config.seed);
        Self {
            config,
            conn: None,
            rng,
            next_id: 1,
        }
    }

    /// Convenience: a default-policy client against `addr`.
    #[must_use]
    pub fn connect(addr: impl Into<String>) -> Self {
        Self::new(ClientConfig::new(addr))
    }

    /// Drives `spec` to a verified answer, retrying retryable failures
    /// with capped jittered backoff (honouring server `retry_after_ms`
    /// hints) up to [`ClientConfig::max_attempts`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Spec`] when the spec fails locally (fatal);
    /// the first fatal server reject; or
    /// [`ClientError::RetriesExhausted`] wrapping the final retryable
    /// failure.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<ClientResult, ClientError> {
        // The expected fingerprint is computed locally, BEFORE anything
        // touches the network: the trust anchor for response
        // verification.
        let canonical = spec
            .canonicalize(&benchfns_resolver())
            .map_err(|e| ClientError::Spec(e.to_string()))?;
        let expected_fp = canonical
            .fingerprint(&NoResolver)
            .map_err(|e| ClientError::Spec(e.to_string()))?
            .to_string();
        let spec_json = serde_json::to_string(spec)
            .map_err(|e| ClientError::Spec(format!("spec serialisation failed: {e}")))?;

        let mut retries: Vec<FaultClass> = Vec::new();
        let mut last: Option<ClientError> = None;
        for attempt in 1..=self.config.max_attempts.max(1) {
            if attempt > 1 {
                let hint = match &last {
                    Some(ClientError::Rejected { retry_after_ms, .. }) => *retry_after_ms,
                    _ => None,
                };
                std::thread::sleep(self.backoff(attempt - 1, hint));
            }
            match self.attempt(&spec_json, &expected_fp) {
                Ok(mut result) => {
                    result.attempts = attempt;
                    result.retries = retries;
                    return Ok(result);
                }
                Err(e) if e.retryable() => {
                    // Resync from a fresh connection: after corruption
                    // or loss, mid-stream state is untrustworthy.
                    self.conn = None;
                    retries.push(FaultClass::from(&e));
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: self.config.max_attempts.max(1),
            last: Box::new(last.unwrap_or(ClientError::Timeout)),
        })
    }

    /// The fault classes recovered from across this client's lifetime
    /// would live here; per-submit accounting is in [`ClientResult`].
    #[must_use]
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// One wire attempt: ensure a connection, submit under a fresh id,
    /// scan lines until the deadline for a verifiable answer.
    fn attempt(&mut self, spec_json: &str, expected_fp: &str) -> Result<ClientResult, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(&self.config)?);
        }
        let id = self.next_id;
        self.next_id += 1;
        let client_field = self
            .config
            .client_name
            .as_deref()
            .map_or_else(String::new, |name| {
                format!("\"client\":\"{}\",", escape_json(name))
            });
        let frame = format!(
            "{{\"type\":\"submit\",\"id\":{id},{client_field}\"stream\":false,\
             \"spec\":{spec_json}}}"
        );
        let conn = self.conn.as_mut().expect("connection just ensured");
        conn.send_line(&frame)?;

        let deadline = Instant::now() + self.config.request_timeout;
        loop {
            let line = conn.read_line(deadline)?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(result) = parse_result_frame(trimmed) {
                if result.id != id {
                    continue; // stale or duplicated delivery — ignore
                }
                if !result.crc_ok() {
                    return Err(ClientError::Corrupt(
                        "result frame failed its CRC check".into(),
                    ));
                }
                if result.fingerprint != expected_fp {
                    return Err(ClientError::Corrupt(format!(
                        "result fingerprint {} != expected {expected_fp}",
                        result.fingerprint
                    )));
                }
                return Ok(ClientResult {
                    outcome_json: result.outcome.to_string(),
                    cached: result.cached,
                    fingerprint: result.fingerprint.to_string(),
                    attempts: 0,
                    retries: Vec::new(),
                });
            }
            if let Some(reject) = parse_error_frame(trimmed) {
                // id 0 is a connection-level reject (bad frame — our
                // submit may have been corrupted in transit).
                if reject.id != id && reject.id != 0 {
                    continue;
                }
                return Err(ClientError::Rejected {
                    code: reject.code,
                    retryable: reject.retryable,
                    retry_after_ms: reject.retry_after_ms,
                    message: reject.message.to_string(),
                });
            }
            if trimmed.starts_with("{\"type\":\"hello\"")
                || trimmed.starts_with("{\"type\":\"event\"")
                || trimmed.starts_with("{\"type\":\"stats\"")
            {
                continue; // benign interleaved frames (or duplicated hello)
            }
            return Err(ClientError::Corrupt(format!(
                "unclassifiable line: {}",
                &trimmed[..trimmed.len().min(80)]
            )));
        }
    }

    /// Capped exponential backoff with seed-derived jitter in
    /// `[0.5, 1.5)×`; a larger server hint wins.
    fn backoff(&mut self, retry: u32, server_hint_ms: Option<u64>) -> Duration {
        let exp = self
            .config
            .backoff_base_ms
            .saturating_mul(1u64 << retry.min(16));
        let capped = exp.min(self.config.backoff_cap_ms).max(1);
        let jitter = 0.5 + self.rng.next_f64();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mut ms = (capped as f64 * jitter) as u64;
        if let Some(hint) = server_hint_ms {
            ms = ms.max(hint);
        }
        Duration::from_millis(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_honours_hints() {
        let mut config = ClientConfig::new("127.0.0.1:1");
        config.backoff_base_ms = 100;
        config.backoff_cap_ms = 1_000;
        config.seed = 7;
        let mut client = DalutClient::new(config.clone());
        let first = client.backoff(0, None);
        // Jitter keeps it within [0.5, 1.5)× the nominal step.
        assert!((50..150).contains(&(first.as_millis() as u64)), "{first:?}");
        let deep = client.backoff(10, None);
        assert!(
            deep.as_millis() as u64 <= 1_500,
            "cap (plus jitter) must bound growth: {deep:?}"
        );
        let hinted = client.backoff(0, Some(4_000));
        assert!(hinted.as_millis() as u64 >= 4_000, "{hinted:?}");

        // Same seed, same jitter stream.
        let mut twin = DalutClient::new(config);
        assert_eq!(twin.backoff(0, None), first);
    }

    #[test]
    fn error_classification_is_fixed() {
        assert!(ClientError::Io("x".into()).retryable());
        assert!(ClientError::Timeout.retryable());
        assert!(ClientError::Corrupt("x".into()).retryable());
        assert!(!ClientError::Spec("x".into()).retryable());
        let shed = ClientError::Rejected {
            code: Some(RejectCode::Overloaded),
            retryable: true,
            retry_after_ms: Some(500),
            message: "busy".into(),
        };
        assert!(shed.retryable());
        assert_eq!(FaultClass::from(&shed), FaultClass::Rejected);
        let fatal = ClientError::Rejected {
            code: Some(RejectCode::InvalidSpec),
            retryable: false,
            retry_after_ms: None,
            message: "bad".into(),
        };
        assert!(!fatal.retryable());
        assert_eq!(
            FaultClass::from(&ClientError::Io("x".into())),
            FaultClass::ConnectionLost
        );
        assert_eq!(FaultClass::from(&ClientError::Timeout), FaultClass::Timeout);
        assert_eq!(
            FaultClass::from(&ClientError::Corrupt("x".into())),
            FaultClass::Corrupt
        );
    }

    #[test]
    fn unreachable_server_exhausts_retries_with_connection_faults() {
        // A port nobody listens on: every attempt is an Io failure.
        let mut config = ClientConfig::new("127.0.0.1:9");
        config.max_attempts = 2;
        config.backoff_base_ms = 1;
        config.backoff_cap_ms = 2;
        config.connect_timeout = Duration::from_millis(200);
        let mut client = DalutClient::new(config);
        let spec = test_spec(1);
        match client.submit(&spec) {
            Err(ClientError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 2);
                assert!(matches!(*last, ClientError::Io(_)), "{last}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    fn test_spec(seed: u64) -> JobSpec {
        use dalut_core::{
            Algorithm, ArchPolicy, BsSaParams, BudgetSpec, DistributionSpec, EstimatorMode,
            FunctionSource,
        };
        let mut params = BsSaParams::fast();
        params.search.seed = seed;
        JobSpec {
            function: FunctionSource::Benchmark {
                name: "cos".to_string(),
                scale_bits: 6,
            },
            distribution: DistributionSpec::Uniform,
            algorithm: Algorithm::BsSa(params),
            policy: ArchPolicy::NormalOnly,
            budget: BudgetSpec::unlimited(),
            estimator: EstimatorMode::Off,
        }
    }
}
