//! Behaviour of the retrying client against scripted fault sequences
//! and a real chaos-proxied server.
//!
//! The scripted tests run a bare `TcpListener` speaking the line
//! protocol by hand — no serde on the server side — so the retry loop,
//! reconnection, CRC/fingerprint verification and backoff-hint paths
//! are all exercised under the offline serde stub too. Only the final
//! end-to-end test (a real `dalut-serve` behind a `ChaosProxy`) needs
//! a real JSON parser and skips itself under the stub.

use dalut_client::{ClientConfig, ClientError, DalutClient, FaultClass};
use dalut_core::{
    Algorithm, ArchPolicy, BsSaParams, BudgetSpec, DistributionSpec, EstimatorMode,
    FunctionFingerprint, FunctionSource, JobSpec, NoResolver,
};
use dalut_serve::protocol::field_u64;
use dalut_serve::{
    benchfns_resolver, reject_frame, result_frame, ChaosPlan, ChaosProxy, RejectCode, Server,
    ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn serde_is_stubbed() -> bool {
    serde_json::from_str::<u64>("1").is_err()
}

/// A cheap, bit-deterministic spec, distinct per seed.
fn spec(seed: u64) -> JobSpec {
    let mut params = BsSaParams::fast();
    params.search.seed = seed;
    params.search.threads = 1;
    JobSpec {
        function: FunctionSource::Benchmark {
            name: "cos".to_string(),
            scale_bits: 6,
        },
        distribution: DistributionSpec::Uniform,
        algorithm: Algorithm::BsSa(params),
        policy: ArchPolicy::NormalOnly,
        budget: BudgetSpec::unlimited(),
        estimator: EstimatorMode::Off,
    }
}

/// The fingerprint the client will expect for `spec` — computed the
/// same way the client does, so a scripted server can forge valid (or
/// deliberately invalid) responses.
fn fingerprint_of(spec: &JobSpec) -> FunctionFingerprint {
    spec.canonicalize(&benchfns_resolver())
        .expect("canonicalize")
        .fingerprint(&NoResolver)
        .expect("fingerprint")
}

/// Fast-retry client policy so fault tests finish in milliseconds.
fn test_config(addr: &str) -> ClientConfig {
    let mut config = ClientConfig::new(addr);
    config.connect_timeout = Duration::from_secs(5);
    config.request_timeout = Duration::from_secs(5);
    config.max_attempts = 4;
    config.backoff_base_ms = 1;
    config.backoff_cap_ms = 5;
    config.seed = 7;
    config
}

const HELLO: &str = "{\"type\":\"hello\",\"protocol\":\"dalut-serve/v1\"}";

/// Accepts one connection, sends the hello, and hands the socket to
/// the script.
fn scripted_connection(
    listener: &TcpListener,
    script: impl FnOnce(&mut TcpStream, &mut BufReader<TcpStream>),
) {
    let (mut stream, _) = listener.accept().expect("accept");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(format!("{HELLO}\n").as_bytes())
        .expect("hello");
    script(&mut stream, &mut reader);
}

fn read_submit_id(reader: &mut BufReader<TcpStream>) -> u64 {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read submit");
    assert!(!line.is_empty(), "client closed before submitting");
    field_u64(&line, "id").expect("submit id")
}

fn send_line(stream: &mut TcpStream, frame: &str) {
    stream.write_all(frame.as_bytes()).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
}

#[test]
fn fatal_rejects_fail_fast_without_retry() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        scripted_connection(&listener, |stream, reader| {
            let id = read_submit_id(reader);
            send_line(
                stream,
                &reject_frame(id, RejectCode::InvalidSpec, None, "scripted: bad spec"),
            );
        });
    });

    let mut client = DalutClient::new(test_config(&addr));
    match client.submit(&spec(1)) {
        Err(ClientError::Rejected {
            code,
            retryable,
            message,
            ..
        }) => {
            assert_eq!(code, Some(RejectCode::InvalidSpec));
            assert!(!retryable, "invalid_spec must be fatal");
            assert!(message.contains("bad spec"), "{message}");
        }
        other => panic!("expected fatal reject, got {other:?}"),
    }
    server.join().expect("scripted server");
}

#[test]
fn reconnects_after_connection_drop_and_completes() {
    let target = spec(2);
    let fp = fingerprint_of(&target);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        // First connection: hello, then hang up before answering.
        scripted_connection(&listener, |_stream, reader| {
            let _ = read_submit_id(reader);
        });
        // Second connection: answer properly.
        scripted_connection(&listener, |stream, reader| {
            let id = read_submit_id(reader);
            send_line(stream, &result_frame(id, false, &fp, "{\"iterations\":3}"));
        });
    });

    let mut client = DalutClient::new(test_config(&addr));
    let result = client.submit(&target).expect("eventual completion");
    assert_eq!(result.attempts, 2);
    assert_eq!(result.retries, vec![FaultClass::ConnectionLost]);
    assert_eq!(result.outcome_json, "{\"iterations\":3}");
    assert!(!result.cached);
    server.join().expect("scripted server");
}

#[test]
fn corrupt_frames_are_rejected_and_retried() {
    let target = spec(3);
    let fp = fingerprint_of(&target);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let fp_for_server = fp;
    let server = std::thread::spawn(move || {
        // First connection: a result whose outcome was tampered with
        // after the CRC was computed — exactly what a flipped byte on
        // the wire produces.
        scripted_connection(&listener, |stream, reader| {
            let id = read_submit_id(reader);
            let good = result_frame(id, false, &fp_for_server, "{\"iterations\":3}");
            let tampered = good.replace("\"iterations\":3", "\"iterations\":7");
            send_line(stream, &tampered);
        });
        // Second connection: a stale-id frame (duplicate delivery from
        // a previous life) followed by the real answer.
        scripted_connection(&listener, |stream, reader| {
            let id = read_submit_id(reader);
            send_line(
                stream,
                &result_frame(id + 1000, false, &fp_for_server, "{\"iterations\":9}"),
            );
            send_line(
                stream,
                &result_frame(id, true, &fp_for_server, "{\"iterations\":3}"),
            );
        });
    });

    let mut client = DalutClient::new(test_config(&addr));
    let result = client.submit(&target).expect("eventual completion");
    assert_eq!(result.attempts, 2);
    assert_eq!(result.retries, vec![FaultClass::Corrupt]);
    assert_eq!(result.outcome_json, "{\"iterations\":3}");
    assert!(result.cached, "second answer was scripted as a cache hit");
    assert_eq!(result.fingerprint, fp.to_string());
    server.join().expect("scripted server");
}

#[test]
fn overload_sheds_back_off_by_the_server_hint() {
    let target = spec(4);
    let fp = fingerprint_of(&target);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        scripted_connection(&listener, |stream, reader| {
            let id = read_submit_id(reader);
            send_line(
                stream,
                &reject_frame(id, RejectCode::Overloaded, Some(300), "scripted: shed"),
            );
        });
        scripted_connection(&listener, |stream, reader| {
            let id = read_submit_id(reader);
            send_line(stream, &result_frame(id, false, &fp, "{\"iterations\":1}"));
        });
    });

    let mut client = DalutClient::new(test_config(&addr));
    let start = Instant::now();
    let result = client.submit(&target).expect("eventual completion");
    assert_eq!(result.attempts, 2);
    assert_eq!(result.retries, vec![FaultClass::Rejected]);
    assert!(
        start.elapsed() >= Duration::from_millis(300),
        "the 300ms retry_after hint must be honoured: {:?}",
        start.elapsed()
    );
    server.join().expect("scripted server");
}

#[test]
fn wrong_fingerprint_exhausts_retries_as_corrupt() {
    let target = spec(5);
    let wrong_fp = fingerprint_of(&spec(6)); // a different job's fingerprint
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        for _ in 0..2 {
            scripted_connection(&listener, |stream, reader| {
                let id = read_submit_id(reader);
                // CRC-valid frame, but for the wrong function: an
                // end-to-end check the transport CRC alone cannot make.
                send_line(
                    stream,
                    &result_frame(id, false, &wrong_fp, "{\"iterations\":1}"),
                );
            });
        }
    });

    let mut config = test_config(&addr);
    config.max_attempts = 2;
    let mut client = DalutClient::new(config);
    match client.submit(&target) {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 2);
            assert!(matches!(*last, ClientError::Corrupt(_)), "{last}");
        }
        other => panic!("expected exhaustion on fingerprint mismatch, got {other:?}"),
    }
    server.join().expect("scripted server");
}

/// The full stack under injected faults: a real server behind a
/// `ChaosProxy` running the complete fault menu. Every submit must
/// eventually complete with outcome bytes identical to a fault-free
/// run against the same server.
#[test]
fn chaos_proxied_submits_complete_byte_identical() {
    if serde_is_stubbed() {
        eprintln!("skipped: stubbed serde_json cannot parse client frames");
        return;
    }
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_dir: None,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());

    // Fault-free baseline, directly against the server.
    let mut direct = DalutClient::new(test_config(&addr));
    let baseline = direct.submit(&spec(30)).expect("fault-free submit");
    assert_eq!(baseline.attempts, 1);

    // The same job plus a fresh one, through the full fault menu.
    let proxy = ChaosProxy::start(&addr, ChaosPlan::full(99)).expect("proxy");
    let mut config = test_config(&proxy.addr().to_string());
    config.max_attempts = 12;
    config.request_timeout = Duration::from_secs(30);
    let mut chaotic = DalutClient::new(config);
    let replay = chaotic.submit(&spec(30)).expect("chaos submit (warm)");
    assert_eq!(
        replay.outcome_json, baseline.outcome_json,
        "chaos-path bytes must match the fault-free run"
    );
    let cold = chaotic.submit(&spec(31)).expect("chaos submit (cold)");
    assert_eq!(cold.fingerprint, fingerprint_of(&spec(31)).to_string());

    let snapshot = proxy.stop();
    assert!(snapshot.connections > 0);
    token.cancel();
    handle
        .join()
        .expect("server thread")
        .expect("server survived the chaos run");
}
