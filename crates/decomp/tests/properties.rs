//! Property-based tests for the decomposition kernel.

use dalut_boolfn::builder::{random_decomposable, random_table};
use dalut_boolfn::{InputDistribution, Partition, TruthTable};
use dalut_decomp::{bit_costs, column_error, opt_for_part, opt_for_part_nd, LsbFill, OptParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Functions built as F(phi(B), A) are recovered with zero error for
    /// any bound mask, thanks to the ideal-row seeding.
    #[test]
    fn decomposable_functions_recovered(seed: u64, mask in 1u32..62) {
        prop_assume!(mask != 0 && mask != 63);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = random_decomposable(6, mask, &mut rng).unwrap();
        let part = Partition::new(6, mask).unwrap();
        let dist = InputDistribution::uniform(6).unwrap();
        let costs = bit_costs(&f, &f, 0, &dist, LsbFill::FromApprox).unwrap();
        let (err, d) = opt_for_part(&costs, part, OptParams::fast(), &mut rng).unwrap();
        prop_assert!(err < 1e-12);
        prop_assert_eq!(d.to_truth_table(), f);
    }

    /// The paper's predictive LSB model never charges more than DALTA's
    /// accurate fill, pointwise: assuming the best completion of the
    /// unknown LSBs is by definition at most the accurate completion.
    #[test]
    fn predictive_cost_pointwise_below_accurate(seed: u64, bit in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_table(6, 5, &mut rng).unwrap();
        let g_hat = random_table(6, 5, &mut rng).unwrap();
        let dist = InputDistribution::uniform(6).unwrap();
        let pred = bit_costs(&g, &g_hat, bit, &dist, LsbFill::Predictive).unwrap();
        let acc = bit_costs(&g, &g_hat, bit, &dist, LsbFill::Accurate).unwrap();
        for x in 0..64usize {
            prop_assert!(pred.c0[x] <= acc.c0[x] + 1e-12);
            prop_assert!(pred.c1[x] <= acc.c1[x] + 1e-12);
        }
    }

    /// With the approximation's LSBs equal to the accurate LSBs (round 1
    /// state), FromApprox and Accurate produce identical costs.
    #[test]
    fn from_approx_equals_accurate_on_fresh_table(seed: u64, bit in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_table(5, 4, &mut rng).unwrap();
        let dist = InputDistribution::uniform(5).unwrap();
        // g_hat differs from g only in bits ABOVE `bit` — the LSBs below
        // are still accurate, as in DALTA's first round.
        let mut g_hat = g.clone();
        for hi in (bit + 1)..4 {
            let col: Vec<bool> = (0..32u32).map(|x| x % 3 == 0).collect();
            g_hat.set_bit_column(hi, &col);
        }
        let a = bit_costs(&g, &g_hat, bit, &dist, LsbFill::FromApprox).unwrap();
        let b = bit_costs(&g, &g_hat, bit, &dist, LsbFill::Accurate).unwrap();
        prop_assert_eq!(a, b);
    }

    /// ND total error equals the sum of its halves' errors under the
    /// split cost arrays (Eq. (2) additivity).
    #[test]
    fn nd_error_is_additive(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_table(6, 4, &mut rng).unwrap();
        let dist = InputDistribution::uniform(6).unwrap();
        let costs = bit_costs(&g, &g, 1, &dist, LsbFill::FromApprox).unwrap();
        let part = Partition::new(6, 0b011010).unwrap();
        let (err, nd) = opt_for_part_nd(&costs, part, OptParams::fast(), &mut rng)
            .unwrap()
            .unwrap();
        // Recompute the halves' contributions from the materialised column.
        let (c0, c1) = costs.split_on_bit(nd.shared());
        let e0 = column_error(&c0, &nd.half0().to_bit_column());
        let e1 = column_error(&c1, &nd.half1().to_bit_column());
        prop_assert!((err - (e0 + e1)).abs() < 1e-12);
    }

    /// The allocation-free scratch-buffer kernel stays bit-deterministic:
    /// two calls with identically seeded RNGs return identical errors and
    /// decompositions (regression for `deterministic_given_seed` after
    /// the kernel rewrite — buffer reuse must not leak state between
    /// restarts or calls).
    #[test]
    fn scratch_kernel_is_deterministic(seed: u64, mask in 1u32..62) {
        prop_assume!(mask != 63);
        let mut frng = StdRng::seed_from_u64(seed);
        let g = random_table(6, 4, &mut frng).unwrap();
        let dist = InputDistribution::uniform(6).unwrap();
        let costs = bit_costs(&g, &g, 2, &dist, LsbFill::FromApprox).unwrap();
        let part = Partition::new(6, mask).unwrap();
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            opt_for_part(&costs, part, OptParams::fast(), &mut rng).unwrap()
        };
        let (e1, d1) = run();
        let (e2, d2) = run();
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(d1, d2);
    }

    /// The alternating optimisation never returns a worse result than
    /// any single type-vector choice among the constant assignments.
    #[test]
    fn opt_beats_constant_columns(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_table(6, 3, &mut rng).unwrap();
        let dist = InputDistribution::uniform(6).unwrap();
        let costs = bit_costs(&g, &g, 1, &dist, LsbFill::FromApprox).unwrap();
        let part = Partition::new(6, 0b000111).unwrap();
        let (err, _) = opt_for_part(&costs, part, OptParams::fast(), &mut rng).unwrap();
        let zero = costs.c0.iter().sum::<f64>();
        let one = costs.c1.iter().sum::<f64>();
        prop_assert!(err <= zero.min(one) + 1e-12);
    }
}

/// Exhaustive check on a tiny instance: OptForPart with the default
/// budget matches the brute-force optimum over every partition of a
/// 4-variable function.
#[test]
fn opt_for_part_matches_brute_force_everywhere() {
    let g = TruthTable::from_fn(4, 3, |x| (x * 5 + 1) % 8).unwrap();
    let dist = InputDistribution::uniform(4).unwrap();
    for bit in 0..3 {
        let costs = bit_costs(&g, &g, bit, &dist, LsbFill::FromApprox).unwrap();
        for mask in 1u32..15 {
            let Ok(part) = Partition::new(4, mask) else {
                continue;
            };
            let (bf, _) = dalut_decomp::brute_force_optimal(&costs, part).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let (err, _) = opt_for_part(&costs, part, OptParams::default(), &mut rng).unwrap();
            assert!(
                (err - bf).abs() < 1e-12,
                "bit {bit} mask {mask:04b}: {err} vs brute force {bf}"
            );
        }
    }
}
