//! Decomposition data types: pattern/type vectors and the three
//! decomposition shapes (normal disjoint, BTO-restricted, non-disjoint).

use dalut_boolfn::{Partition, TruthTable};
use serde::{Deserialize, Serialize};

/// The type of a row of the 2-D truth table (paper Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowType {
    /// Type 1: the row is all zeros.
    AllZero,
    /// Type 2: the row is all ones.
    AllOne,
    /// Type 3: the row equals the pattern vector `V`.
    Pattern,
    /// Type 4: the row equals the complement of `V`.
    Complement,
}

impl RowType {
    /// The paper's 1-based numeric code for this type.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            Self::AllZero => 1,
            Self::AllOne => 2,
            Self::Pattern => 3,
            Self::Complement => 4,
        }
    }

    /// Parses the paper's numeric code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::AllZero),
            2 => Some(Self::AllOne),
            3 => Some(Self::Pattern),
            4 => Some(Self::Complement),
            _ => None,
        }
    }

    /// The cell value this row type produces given the pattern bit `v` of
    /// the cell's column.
    #[inline]
    pub fn apply(self, v: bool) -> bool {
        match self {
            Self::AllZero => false,
            Self::AllOne => true,
            Self::Pattern => v,
            Self::Complement => !v,
        }
    }
}

/// A disjoint decomposition `f̂(X) = F(φ(B), A)` of a single output bit,
/// defined by a partition `ω`, a pattern vector `V` (one bit per bound-set
/// assignment) and a type vector `T` (one type per free-set assignment).
///
/// # Examples
///
/// ```
/// use dalut_decomp::{DisjointDecomp, RowType};
/// use dalut_boolfn::Partition;
///
/// // Paper Example 1: A = {x0,x1} rows, B = {x2,x3} cols,
/// // V = (0,1,1,0), T = (3,4,2,1).
/// let d = DisjointDecomp::new(
///     Partition::new(4, 0b1100).unwrap(),
///     vec![false, true, true, false],
///     vec![RowType::Pattern, RowType::Complement, RowType::AllOne, RowType::AllZero],
/// ).unwrap();
/// // phi = x2 XOR x3; row (x0,x1)=(0,0) is type 3 => f = phi there.
/// assert!(d.eval_bit(0b0100));
/// assert!(!d.eval_bit(0b1100));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisjointDecomp {
    partition: Partition,
    pattern: Vec<bool>,
    types: Vec<RowType>,
}

impl DisjointDecomp {
    /// Creates a disjoint decomposition.
    ///
    /// # Errors
    ///
    /// Returns `None` if `pattern.len() != 2^|B|` or `types.len() != 2^|A|`.
    pub fn new(partition: Partition, pattern: Vec<bool>, types: Vec<RowType>) -> Option<Self> {
        if pattern.len() != partition.cols() || types.len() != partition.rows() {
            return None;
        }
        Some(Self {
            partition,
            pattern,
            types,
        })
    }

    /// The variable partition `ω = (A, B)`.
    #[inline]
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The pattern vector `V`, indexed by bound-set assignment.
    #[inline]
    pub fn pattern(&self) -> &[bool] {
        &self.pattern
    }

    /// The type vector `T`, indexed by free-set assignment.
    #[inline]
    pub fn types(&self) -> &[RowType] {
        &self.types
    }

    /// Evaluates the decomposed bit on flat input `x`.
    #[inline]
    pub fn eval_bit(&self, x: u32) -> bool {
        let col = self.partition.col_of(x) as usize;
        let row = self.partition.row_of(x) as usize;
        self.types[row].apply(self.pattern[col])
    }

    /// Contents of the bound table (the function `φ`), indexed by the
    /// bound-set assignment: exactly the pattern vector `V`.
    #[inline]
    pub fn bound_table(&self) -> &[bool] {
        &self.pattern
    }

    /// Contents of the free table (the function `F`), indexed by
    /// `(row << 1) | φ` — the free-set assignment with `φ` as the LSB, the
    /// address layout of the paper's Fig. 1(b).
    pub fn free_table(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.types.len() * 2);
        for &t in &self.types {
            out.push(t.apply(false));
            out.push(t.apply(true));
        }
        out
    }

    /// Materialises the decomposed bit as a column over all `2^n` inputs.
    pub fn to_bit_column(&self) -> Vec<bool> {
        (0..1u32 << self.partition.n())
            .map(|x| self.eval_bit(x))
            .collect()
    }

    /// Materialises as a single-output [`TruthTable`].
    pub fn to_truth_table(&self) -> TruthTable {
        TruthTable::from_bits(self.partition.n(), &self.to_bit_column())
            .expect("decomposition dimensions are valid by construction")
    }

    /// True if every row is [`RowType::Pattern`], i.e. the decomposition is
    /// realisable in bound-table-only mode.
    pub fn is_bto(&self) -> bool {
        self.types.iter().all(|&t| t == RowType::Pattern)
    }
}

/// A bound-table-only (BTO) decomposition: `f̂(X) = φ(B)`, independent of
/// the free set. Equivalent to a [`DisjointDecomp`] whose rows are all
/// type 3, but the free table can be clock-gated in hardware (paper §IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BtoDecomp {
    partition: Partition,
    pattern: Vec<bool>,
}

impl BtoDecomp {
    /// Creates a BTO decomposition.
    ///
    /// Returns `None` if `pattern.len() != 2^|B|`.
    pub fn new(partition: Partition, pattern: Vec<bool>) -> Option<Self> {
        if pattern.len() != partition.cols() {
            return None;
        }
        Some(Self { partition, pattern })
    }

    /// The variable partition.
    #[inline]
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The pattern vector `V` = bound-table contents.
    #[inline]
    pub fn pattern(&self) -> &[bool] {
        &self.pattern
    }

    /// Evaluates the bit on flat input `x`.
    #[inline]
    pub fn eval_bit(&self, x: u32) -> bool {
        self.pattern[self.partition.col_of(x) as usize]
    }

    /// Materialises the bit column over all inputs.
    pub fn to_bit_column(&self) -> Vec<bool> {
        (0..1u32 << self.partition.n())
            .map(|x| self.eval_bit(x))
            .collect()
    }

    /// The equivalent all-type-3 disjoint decomposition.
    pub fn to_disjoint(&self) -> DisjointDecomp {
        DisjointDecomp::new(
            self.partition,
            self.pattern.clone(),
            vec![RowType::Pattern; self.partition.rows()],
        )
        .expect("dimensions valid by construction")
    }
}

/// Removes bit `s` from mask `mask` over `n` variables, shifting higher
/// bits down by one (the index compression used when conditioning on a
/// shared bit).
#[inline]
pub fn reduce_mask(mask: u32, s: usize) -> u32 {
    let low = mask & ((1u32 << s) - 1);
    let high = (mask >> (s + 1)) << s;
    low | high
}

/// Removes bit `s` from input index `x` (same compression as
/// [`reduce_mask`]).
#[inline]
pub fn reduce_index(x: u32, s: usize) -> u32 {
    reduce_mask(x, s)
}

/// Inserts bit `value` at position `s` into reduced index `rx` (inverse of
/// [`reduce_index`]).
#[inline]
pub fn expand_index(rx: u32, s: usize, value: bool) -> u32 {
    let low = rx & ((1u32 << s) - 1);
    let high = (rx >> s) << (s + 1);
    low | high | (u32::from(value) << s)
}

/// A non-disjoint decomposition `f̂(X) = F(φ(B), A, x_s)` with a single
/// shared bit `x_s ∈ B` (paper §IV-B1, Eq. (1)):
///
/// `f̂(X) = x̄_s · F0(φ0(B∖x_s), A) + x_s · F1(φ1(B∖x_s), A)`.
///
/// Each half is a disjoint decomposition over the reduced variable set
/// `X ∖ {x_s}` (indices compressed with [`reduce_index`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonDisjointDecomp {
    partition: Partition,
    shared: u8,
    half0: DisjointDecomp,
    half1: DisjointDecomp,
}

impl NonDisjointDecomp {
    /// Creates a non-disjoint decomposition from its two conditional
    /// halves.
    ///
    /// Returns `None` if `shared` is not in the bound set, or the halves'
    /// partitions are not the reduction of `partition` by `shared`.
    pub fn new(
        partition: Partition,
        shared: usize,
        half0: DisjointDecomp,
        half1: DisjointDecomp,
    ) -> Option<Self> {
        if partition.bound_mask() & (1 << shared) == 0 {
            return None;
        }
        let reduced_bound = reduce_mask(partition.bound_mask() & !(1u32 << shared), shared);
        let reduced = Partition::new(partition.n() - 1, reduced_bound).ok()?;
        if half0.partition() != reduced || half1.partition() != reduced {
            return None;
        }
        Some(Self {
            partition,
            shared: shared as u8,
            half0,
            half1,
        })
    }

    /// The (original, `n`-variable) partition.
    #[inline]
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The shared variable index `s` (`x_s ∈ B`).
    #[inline]
    pub fn shared(&self) -> usize {
        self.shared as usize
    }

    /// The conditional half for `x_s = 0`.
    #[inline]
    pub fn half0(&self) -> &DisjointDecomp {
        &self.half0
    }

    /// The conditional half for `x_s = 1`.
    #[inline]
    pub fn half1(&self) -> &DisjointDecomp {
        &self.half1
    }

    /// Evaluates the bit on flat input `x` via Eq. (1).
    #[inline]
    pub fn eval_bit(&self, x: u32) -> bool {
        let s = self.shared as usize;
        let rx = reduce_index(x, s);
        if (x >> s) & 1 == 1 {
            self.half1.eval_bit(rx)
        } else {
            self.half0.eval_bit(rx)
        }
    }

    /// Contents of the combined bound table
    /// `φ(B) = x̄_s·φ0(B∖x_s) + x_s·φ1(B∖x_s)`, indexed by the bound-set
    /// assignment of the *original* partition (so the table has `2^b`
    /// entries, with `x_s` folded into the address).
    pub fn bound_table(&self) -> Vec<bool> {
        let bound_vars = self.partition.bound_vars();
        let s_pos_in_bound = bound_vars
            .iter()
            .position(|&v| v as usize == self.shared as usize)
            .expect("shared bit is in the bound set by construction");
        (0..self.partition.cols())
            .map(|col| {
                let s_bit = (col >> s_pos_in_bound) & 1 == 1;
                let reduced_col = reduce_index(col as u32, s_pos_in_bound) as usize;
                if s_bit {
                    self.half1.pattern()[reduced_col]
                } else {
                    self.half0.pattern()[reduced_col]
                }
            })
            .collect()
    }

    /// Free-table contents for `F0` (addressed as in
    /// [`DisjointDecomp::free_table`]).
    pub fn free_table0(&self) -> Vec<bool> {
        self.half0.free_table()
    }

    /// Free-table contents for `F1`.
    pub fn free_table1(&self) -> Vec<bool> {
        self.half1.free_table()
    }

    /// Materialises the bit column over all `2^n` inputs.
    pub fn to_bit_column(&self) -> Vec<bool> {
        (0..1u32 << self.partition.n())
            .map(|x| self.eval_bit(x))
            .collect()
    }
}

/// Any of the three decomposition shapes, tagged by operating mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyDecomp {
    /// Normal disjoint decomposition (free + bound tables active).
    Normal(DisjointDecomp),
    /// Bound-table-only decomposition (free table gated off).
    Bto(BtoDecomp),
    /// Non-disjoint decomposition (both free tables active).
    NonDisjoint(NonDisjointDecomp),
}

impl AnyDecomp {
    /// Evaluates the bit on flat input `x`.
    #[inline]
    pub fn eval_bit(&self, x: u32) -> bool {
        match self {
            Self::Normal(d) => d.eval_bit(x),
            Self::Bto(d) => d.eval_bit(x),
            Self::NonDisjoint(d) => d.eval_bit(x),
        }
    }

    /// The partition over the original `n` variables.
    #[inline]
    pub fn partition(&self) -> Partition {
        match self {
            Self::Normal(d) => d.partition(),
            Self::Bto(d) => d.partition(),
            Self::NonDisjoint(d) => d.partition(),
        }
    }

    /// Materialises the bit column over all `2^n` inputs.
    pub fn to_bit_column(&self) -> Vec<bool> {
        match self {
            Self::Normal(d) => d.to_bit_column(),
            Self::Bto(d) => d.to_bit_column(),
            Self::NonDisjoint(d) => d.to_bit_column(),
        }
    }

    /// Short human-readable mode name.
    pub fn mode_name(&self) -> &'static str {
        match self {
            Self::Normal(_) => "normal",
            Self::Bto(_) => "bto",
            Self::NonDisjoint(_) => "nd",
        }
    }

    /// Bits of bound-table (rank-LUT) storage this decomposition programs:
    /// `2^b` for every mode (the ND shapes fold the shared bit into the
    /// bound address, see [`NonDisjointDecomp::bound_table`]).
    #[inline]
    pub fn bound_table_bits(&self) -> usize {
        1usize << self.partition().bound_size()
    }

    /// Bits of *active* free-table storage: `2^(f+1)` per enabled free
    /// table (the `φ` output widens the free address by one). BTO gates
    /// its free table off entirely (0), normal enables one, non-disjoint
    /// enables both conditional halves.
    #[inline]
    pub fn free_table_bits(&self) -> usize {
        let per_table = 1usize << (self.partition().free_size() + 1);
        per_table * self.active_free_tables()
    }

    /// Number of free tables the mode leaves clocked: 0 (BTO), 1 (normal)
    /// or 2 (non-disjoint).
    #[inline]
    pub fn active_free_tables(&self) -> usize {
        match self {
            Self::Bto(_) => 0,
            Self::Normal(_) => 1,
            Self::NonDisjoint(_) => 2,
        }
    }

    /// Total active table bits, the decomposition-level cost driver the
    /// analytic resource estimator keys on.
    #[inline]
    pub fn table_bits(&self) -> usize {
        self.bound_table_bits() + self.free_table_bits()
    }
}

/// A scored decomposition setting `s = (E, ω, V, T)` (paper §III-A): the
/// decomposition plus the MED it was assigned during optimisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Setting {
    /// The MED `E` of the approximation this setting was scored with.
    pub error: f64,
    /// The decomposition itself.
    pub decomp: AnyDecomp,
}

impl Setting {
    /// Creates a setting.
    pub fn new(error: f64, decomp: AnyDecomp) -> Self {
        Self { error, decomp }
    }
}

/// Convenience: evaluates a bit column described by `decomp` and splices it
/// into output bit `bit` of `g_hat`.
pub fn splice_bit(g_hat: &TruthTable, bit: usize, decomp: &AnyDecomp) -> TruthTable {
    g_hat.with_bit_replaced(bit, |x| decomp.eval_bit(x))
}

/// Returns the φ function of a pattern vector as a sum-of-minterms string
/// over the bound variables (used by examples to print paper-style
/// formulas).
pub fn pattern_to_minterms(pattern: &[bool], bound_vars: &[u32]) -> String {
    let mut terms = Vec::new();
    for (col, &v) in pattern.iter().enumerate() {
        if !v {
            continue;
        }
        let mut lits = Vec::new();
        for (i, &var) in bound_vars.iter().enumerate() {
            let set = (col >> i) & 1 == 1;
            lits.push(if set {
                format!("x{var}")
            } else {
                format!("~x{var}")
            });
        }
        terms.push(lits.join("·"));
    }
    if terms.is_empty() {
        "0".to_string()
    } else {
        terms.join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::InputDistribution;

    fn example1() -> DisjointDecomp {
        DisjointDecomp::new(
            Partition::new(4, 0b1100).unwrap(),
            vec![false, true, true, false],
            vec![
                RowType::Pattern,
                RowType::Complement,
                RowType::AllOne,
                RowType::AllZero,
            ],
        )
        .unwrap()
    }

    #[test]
    fn row_type_codes_round_trip() {
        for code in 1..=4u8 {
            assert_eq!(RowType::from_code(code).unwrap().code(), code);
        }
        assert!(RowType::from_code(0).is_none());
        assert!(RowType::from_code(5).is_none());
    }

    #[test]
    fn row_type_apply_semantics() {
        assert!(!RowType::AllZero.apply(true));
        assert!(RowType::AllOne.apply(false));
        assert!(RowType::Pattern.apply(true));
        assert!(!RowType::Pattern.apply(false));
        assert!(RowType::Complement.apply(false));
    }

    #[test]
    fn example1_reproduces_paper_truth_table() {
        // Expected 2-D table from Fig. 1(a): rows (x0,x1) 00,01,10,11 over
        // cols (x2,x3) 00,01,10,11:
        let rows: [[bool; 4]; 4] = [
            [false, true, true, false],
            [true, false, false, true],
            [true, true, true, true],
            [false, false, false, false],
        ];
        let d = example1();
        for x in 0..16u32 {
            let a = (x & 0b11) as usize;
            let b = ((x >> 2) & 0b11) as usize;
            assert_eq!(d.eval_bit(x), rows[a][b], "x={x:04b}");
        }
    }

    #[test]
    fn example1_phi_is_xor() {
        let d = example1();
        // phi(x2,x3) = x2 XOR x3 over cols 00,01,10,11.
        assert_eq!(d.bound_table(), &[false, true, true, false]);
    }

    #[test]
    fn example1_free_table_matches_big_f() {
        // Paper: F(phi, x1, x2) = phi·~x1·~x2 + ~phi·~x1·x2 + x1·~x2, with
        // rows enumerated in the order (x1,x2) = 00, 01, 10, 11. Our row
        // index enumerates types() in the same order, so row bit 0 plays
        // the paper's x2 and row bit 1 plays the paper's x1.
        let d = example1();
        let ft = d.free_table();
        for row in 0..4usize {
            for phi in [false, true] {
                let px2 = row & 1 == 1;
                let px1 = row >> 1 == 1;
                // phi·~x1·~x2 + ~phi·~x1·x2 + x1·~x2, term by term.
                let t3 = phi && !px1 && !px2;
                let t4 = !phi && !px1 && px2;
                let t2 = px1 && !px2;
                let expect = t3 || t4 || t2;
                assert_eq!(ft[(row << 1) | usize::from(phi)], expect);
            }
        }
    }

    #[test]
    fn free_and_bound_tables_compose_to_eval() {
        let d = example1();
        let p = d.partition();
        for x in 0..16u32 {
            let phi = d.bound_table()[p.col_of(x) as usize];
            let f = d.free_table()[((p.row_of(x) as usize) << 1) | usize::from(phi)];
            assert_eq!(f, d.eval_bit(x));
        }
    }

    #[test]
    fn new_rejects_wrong_lengths() {
        let p = Partition::new(4, 0b1100).unwrap();
        assert!(DisjointDecomp::new(p, vec![false; 3], vec![RowType::AllZero; 4]).is_none());
        assert!(DisjointDecomp::new(p, vec![false; 4], vec![RowType::AllZero; 5]).is_none());
        assert!(BtoDecomp::new(p, vec![true; 5]).is_none());
    }

    #[test]
    fn bto_eval_ignores_free_set() {
        let p = Partition::new(4, 0b0011).unwrap();
        let b = BtoDecomp::new(p, vec![false, true, true, false]).unwrap();
        for x in 0..16u32 {
            // Changing free bits (x2,x3) must not change the output.
            assert_eq!(b.eval_bit(x), b.eval_bit(x & 0b0011));
        }
        assert!(b.to_disjoint().is_bto());
        // And the all-type-3 disjoint equivalent evaluates identically.
        let d = b.to_disjoint();
        for x in 0..16u32 {
            assert_eq!(b.eval_bit(x), d.eval_bit(x));
        }
    }

    #[test]
    fn reduce_expand_index_round_trip() {
        for s in 0..5usize {
            for x in 0..32u32 {
                let r = reduce_index(x, s);
                let bit = (x >> s) & 1 == 1;
                assert_eq!(expand_index(r, s, bit), x);
            }
        }
    }

    #[test]
    fn reduce_mask_drops_selected_bit() {
        assert_eq!(reduce_mask(0b10110, 1), 0b1010);
        assert_eq!(reduce_mask(0b10110, 4), 0b0110);
        assert_eq!(reduce_mask(0b10110, 0), 0b1011);
    }

    fn make_nd() -> NonDisjointDecomp {
        // 5 vars, B = {x0,x1,x2}, A = {x3,x4}, shared s = x1.
        let part = Partition::new(5, 0b00111).unwrap();
        let reduced = Partition::new(4, 0b0011).unwrap();
        let half0 = DisjointDecomp::new(
            reduced,
            vec![true, false, false, true], // phi0 = XNOR(x0, x2-reduced)
            vec![
                RowType::Pattern,
                RowType::Pattern,
                RowType::Pattern,
                RowType::AllOne,
            ],
        )
        .unwrap();
        let half1 = DisjointDecomp::new(
            reduced,
            vec![true, false, true, false],
            vec![
                RowType::AllOne,
                RowType::Pattern,
                RowType::Pattern,
                RowType::AllZero,
            ],
        )
        .unwrap();
        NonDisjointDecomp::new(part, 1, half0, half1).unwrap()
    }

    #[test]
    fn nd_eval_selects_half_by_shared_bit() {
        let nd = make_nd();
        for x in 0..32u32 {
            let rx = reduce_index(x, 1);
            let expect = if (x >> 1) & 1 == 1 {
                nd.half1().eval_bit(rx)
            } else {
                nd.half0().eval_bit(rx)
            };
            assert_eq!(nd.eval_bit(x), expect);
        }
    }

    #[test]
    fn nd_combined_bound_table_matches_halves() {
        let nd = make_nd();
        let bt = nd.bound_table();
        let p = nd.partition();
        // For every original input, phi from the combined table equals the
        // selected half's pattern bit.
        for x in 0..32u32 {
            let col = p.col_of(x) as usize;
            let rx = reduce_index(x, nd.shared());
            let rcol = nd.half0().partition().col_of(rx) as usize;
            let expect = if (x >> nd.shared()) & 1 == 1 {
                nd.half1().pattern()[rcol]
            } else {
                nd.half0().pattern()[rcol]
            };
            assert_eq!(bt[col], expect, "x={x:05b}");
        }
    }

    #[test]
    fn nd_new_rejects_bad_shared_bit() {
        let nd = make_nd();
        let part = nd.partition();
        // x3 is in the free set.
        assert!(NonDisjointDecomp::new(part, 3, nd.half0().clone(), nd.half1().clone()).is_none());
    }

    #[test]
    fn any_decomp_dispatch_consistency() {
        let d = example1();
        let any = AnyDecomp::Normal(d.clone());
        assert_eq!(any.mode_name(), "normal");
        for x in 0..16u32 {
            assert_eq!(any.eval_bit(x), d.eval_bit(x));
        }
        let col = any.to_bit_column();
        assert_eq!(col.len(), 16);
        for x in 0..16u32 {
            assert_eq!(col[x as usize], d.eval_bit(x));
        }
    }

    #[test]
    fn table_bits_by_mode() {
        // n = 4, b = 2, f = 2: bound 2^2 = 4, free per table 2^3 = 8.
        let normal = AnyDecomp::Normal(example1());
        assert_eq!(normal.bound_table_bits(), 4);
        assert_eq!(normal.active_free_tables(), 1);
        assert_eq!(normal.free_table_bits(), 8);
        assert_eq!(normal.table_bits(), 12);

        let p = Partition::new(4, 0b1100).unwrap();
        let bto = AnyDecomp::Bto(BtoDecomp::new(p, vec![false, true, true, false]).unwrap());
        assert_eq!(bto.bound_table_bits(), 4);
        assert_eq!(bto.free_table_bits(), 0);
        assert_eq!(bto.table_bits(), 4);

        // n = 5, b = 3, f = 2: bound 2^3 = 8, free 2 × 2^3 = 16.
        let nd = AnyDecomp::NonDisjoint(make_nd());
        assert_eq!(nd.bound_table_bits(), 8);
        assert_eq!(nd.active_free_tables(), 2);
        assert_eq!(nd.free_table_bits(), 16);
        assert_eq!(nd.table_bits(), 24);
    }

    #[test]
    fn splice_bit_installs_decomposition() {
        let g = TruthTable::from_fn(4, 3, |x| x % 8).unwrap();
        let d = AnyDecomp::Normal(example1());
        let spliced = splice_bit(&g, 2, &d);
        let dist = InputDistribution::uniform(4).unwrap();
        // Bits 0 and 1 untouched.
        assert_eq!(
            dalut_boolfn::metrics::bit_flip_rate(&g, &spliced, &dist, 0).unwrap(),
            0.0
        );
        for x in 0..16u32 {
            assert_eq!(spliced.output_bit(2, x), d.eval_bit(x));
        }
    }

    #[test]
    fn pattern_to_minterms_formats_example1_phi() {
        let s = pattern_to_minterms(&[false, true, true, false], &[2, 3]);
        assert_eq!(s, "x2·~x3 + ~x2·x3");
    }

    #[test]
    fn setting_serde_round_trip() {
        let s = Setting::new(1.5, AnyDecomp::Normal(example1()));
        let json = serde_json::to_string(&s).unwrap();
        let back: Setting = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
