//! Typed errors for the decomposition kernels.

use std::error::Error;
use std::fmt;

/// Errors reported by the `OptForPart` kernels and the brute-force oracle.
///
/// These cover the *fallible* preconditions a caller can get wrong (width
/// mismatches, oversized bound sets). Internal invariants — dimensions that
/// hold by construction once the entry checks pass — remain documented
/// `expect`s.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecompError {
    /// The cost table and the partition describe different input widths.
    WidthMismatch {
        /// Input width of the cost table.
        costs: usize,
        /// Input width (`n`) of the partition.
        partition: usize,
    },
    /// The bound set is too large for an exhaustive enumeration.
    BoundTooLarge {
        /// Number of chart columns (`2^b`) requested.
        cols: usize,
        /// Maximum number of columns the oracle supports.
        limit: usize,
    },
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WidthMismatch { costs, partition } => write!(
                f,
                "cost table over {costs} inputs but partition over {partition}"
            ),
            Self::BoundTooLarge { cols, limit } => write!(
                f,
                "bound set spans {cols} chart columns, oracle limit is {limit}"
            ),
        }
    }
}

impl Error for DecompError {}

/// Checks the shared `costs.inputs == partition.n()` precondition.
pub(crate) fn check_widths(
    costs: &crate::cost::BitCosts,
    partition: dalut_boolfn::Partition,
) -> Result<(), DecompError> {
    if costs.inputs != partition.n() {
        return Err(DecompError::WidthMismatch {
            costs: costs.inputs,
            partition: partition.n(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_widths() {
        let e = DecompError::WidthMismatch {
            costs: 6,
            partition: 5,
        };
        let s = e.to_string();
        assert!(s.contains('6') && s.contains('5'), "{s}");
    }

    #[test]
    fn display_names_column_limit() {
        let e = DecompError::BoundTooLarge {
            cols: 32,
            limit: 20,
        };
        let s = e.to_string();
        assert!(s.contains("32") && s.contains("20"), "{s}");
    }
}
