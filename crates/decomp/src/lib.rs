//! # dalut-decomp
//!
//! Exact and approximate Ashenhurst decomposition for the DALUT project
//! (DATE 2023 reproduction).
//!
//! The paper approximates each output bit `ĝ_k` of a multi-output function
//! by a decomposition `F(φ(B), A)` chosen to minimise the mean error
//! distance (MED). This crate provides the decomposition machinery that
//! both the DALTA baseline and the proposed BS-SA search call into:
//!
//! * [`cost`] — per-input 0/1-choice cost arrays (`c0`, `c1`) under the
//!   three LSB-fill models (current approximation, DALTA's accurate fill,
//!   and the paper's §III-B predictive model). Costs are
//!   partition-independent, so they are computed once per search step and
//!   merely re-indexed per candidate partition.
//! * [`opt_for_part()`](opt_for_part()) — the `OptForPart` kernel: alternating `(V, T)`
//!   minimisation with random restarts, the closed-form BTO-restricted
//!   variant, and the non-disjoint variant that conditions on a shared
//!   bound bit `x_s` (Eq. (1)/(2)).
//! * [`exact`] — Ashenhurst's Theorem-1 exact decomposition test and a
//!   brute-force optimal approximate decomposer (test oracle).
//! * [`setting`] — the decomposition data types ([`DisjointDecomp`],
//!   [`BtoDecomp`], [`NonDisjointDecomp`]) and the scored [`Setting`].
//!
//! ## Example
//!
//! ```
//! use dalut_boolfn::{InputDistribution, Partition, TruthTable};
//! use dalut_decomp::{bit_costs, opt_for_part, LsbFill, OptParams};
//! use rand::SeedableRng;
//!
//! // Approximate the MSB of a 6-input adder-like function.
//! let g = TruthTable::from_fn(6, 4, |x| (x % 13) % 16).unwrap();
//! let dist = InputDistribution::uniform(6).unwrap();
//! let costs = bit_costs(&g, &g, 3, &dist, LsbFill::Accurate).unwrap();
//! let part = Partition::new(6, 0b000111).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (err, decomp) = opt_for_part(&costs, part, OptParams::fast(), &mut rng).unwrap();
//! assert!(err.is_finite());
//! assert_eq!(decomp.partition(), part);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod error;
pub mod exact;
pub mod kernel_stats;
pub mod opt_for_part;
pub mod setting;

pub use cost::{bit_costs, column_error, BitCosts, LsbFill};
pub use error::DecompError;
pub use exact::{brute_force_optimal, exact_decompose, is_decomposable};
pub use kernel_stats::KernelStats;
#[cfg(any(test, feature = "ref-kernel"))]
pub use opt_for_part::reference::opt_for_part_ref;
pub use opt_for_part::{opt_for_part, opt_for_part_bto, opt_for_part_nd, OptParams};
pub use setting::{
    expand_index, pattern_to_minterms, reduce_index, reduce_mask, splice_bit, AnyDecomp, BtoDecomp,
    DisjointDecomp, NonDisjointDecomp, RowType, Setting,
};
