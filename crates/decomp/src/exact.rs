//! Exact Ashenhurst decomposition (paper Theorem 1) and a brute-force
//! optimal approximate decomposer used as a test oracle.

use crate::cost::BitCosts;
use crate::error::{check_widths, DecompError};
use crate::setting::{DisjointDecomp, RowType};
use dalut_boolfn::{Partition, TruthTable, TwoDimTable};

/// Checks whether single-output `f` has an exact disjoint decomposition
/// under `partition` (Ashenhurst's condition: every row of the 2-D chart
/// is all-0, all-1, a common pattern `V`, or its complement) and returns
/// the decomposition if so.
///
/// # Errors
///
/// Propagates dimension errors from building the 2-D view.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{Partition, TruthTable};
/// use dalut_decomp::exact_decompose;
///
/// let xor = TruthTable::from_fn(4, 1, |x| x.count_ones() % 2).unwrap();
/// let maj = TruthTable::from_fn(3, 1, |x| u32::from(x.count_ones() >= 2)).unwrap();
/// assert!(exact_decompose(&xor, Partition::new(4, 0b0011).unwrap())
///     .unwrap()
///     .is_some());
/// assert!(exact_decompose(&maj, Partition::new(3, 0b011).unwrap())
///     .unwrap()
///     .is_none());
/// ```
pub fn exact_decompose(
    f: &TruthTable,
    partition: Partition,
) -> Result<Option<DisjointDecomp>, dalut_boolfn::BoolFnError> {
    let chart = TwoDimTable::new(f, partition)?;
    let rows = chart.grid().rows();
    let cols = chart.grid().cols();

    // Find the pattern vector: the first non-constant row.
    let mut pattern: Option<Vec<bool>> = None;
    for r in 0..rows {
        let row = chart.row_pattern(r);
        let any_one = row.iter().any(|&v| v);
        let any_zero = row.iter().any(|&v| !v);
        if any_one && any_zero {
            pattern = Some(row.to_vec());
            break;
        }
    }
    // All rows constant: pick an arbitrary pattern (all zeros).
    let pattern = pattern.unwrap_or_else(|| vec![false; cols]);

    let mut types = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = chart.row_pattern(r);
        let t = classify_row(row, &pattern);
        match t {
            Some(t) => types.push(t),
            None => return Ok(None),
        }
    }
    Ok(DisjointDecomp::new(partition, pattern, types))
}

/// Classifies a row against a pattern: all-0, all-1, pattern, complement,
/// or none of these (constant rows prefer the constant types).
fn classify_row(row: &[bool], pattern: &[bool]) -> Option<RowType> {
    if row.iter().all(|&v| !v) {
        return Some(RowType::AllZero);
    }
    if row.iter().all(|&v| v) {
        return Some(RowType::AllOne);
    }
    if row == pattern {
        return Some(RowType::Pattern);
    }
    if row.iter().zip(pattern).all(|(&a, &b)| a != b) {
        return Some(RowType::Complement);
    }
    None
}

/// True if `f` has an exact disjoint decomposition under `partition`.
///
/// # Errors
///
/// Propagates dimension errors.
pub fn is_decomposable(
    f: &TruthTable,
    partition: Partition,
) -> Result<bool, dalut_boolfn::BoolFnError> {
    Ok(exact_decompose(f, partition)?.is_some())
}

/// Brute-force globally optimal approximate decomposition for a fixed
/// partition: enumerates all `2^(2^b)` pattern vectors and picks the best
/// type per row for each. Exponential — intended only as a test oracle for
/// charts with `b <= 4`.
///
/// # Errors
///
/// Returns [`DecompError::WidthMismatch`] if `costs.inputs != partition.n()`
/// and [`DecompError::BoundTooLarge`] if `2^b > 20`.
pub fn brute_force_optimal(
    costs: &BitCosts,
    partition: Partition,
) -> Result<(f64, DisjointDecomp), DecompError> {
    check_widths(costs, partition)?;
    let cols = partition.cols();
    const COL_LIMIT: usize = 20;
    if cols > COL_LIMIT {
        return Err(DecompError::BoundTooLarge {
            cols,
            limit: COL_LIMIT,
        });
    }
    let rows = partition.rows();
    let st = partition.scatter_table();

    let mut best: Option<(f64, Vec<bool>, Vec<RowType>)> = None;
    for pat in 0u64..(1u64 << cols) {
        let v: Vec<bool> = (0..cols).map(|c| (pat >> c) & 1 == 1).collect();
        let mut total = 0.0;
        let mut types = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut t = [0.0f64; 4]; // all0, all1, pattern, complement
            for (c, &vc) in v.iter().enumerate() {
                let x = st.flat_index(r, c);
                let (c0, c1) = (costs.c0[x], costs.c1[x]);
                t[0] += c0;
                t[1] += c1;
                if vc {
                    t[2] += c1;
                    t[3] += c0;
                } else {
                    t[2] += c0;
                    t[3] += c1;
                }
            }
            let (mut bi, mut bv) = (0usize, t[0]);
            for (i, &tv) in t.iter().enumerate().skip(1) {
                if tv < bv {
                    bi = i;
                    bv = tv;
                }
            }
            total += bv;
            types.push(match bi {
                0 => RowType::AllZero,
                1 => RowType::AllOne,
                2 => RowType::Pattern,
                _ => RowType::Complement,
            });
        }
        if best.as_ref().is_none_or(|(e, _, _)| total < *e) {
            best = Some((total, v, types));
        }
    }
    // Invariants, not fallible: at least pattern 0 was enumerated, and the
    // winning pattern/types are sized by this very partition.
    let (err, v, types) = best.expect("pattern enumeration is non-empty");
    Ok((
        err,
        DisjointDecomp::new(partition, v, types).expect("dimensions match"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{bit_costs, column_error, LsbFill};
    use dalut_boolfn::builder::{random_decomposable, random_table};
    use dalut_boolfn::InputDistribution;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn paper_example1_fn() -> TruthTable {
        let rows: [[u32; 4]; 4] = [[0, 1, 1, 0], [1, 0, 0, 1], [1, 1, 1, 1], [0, 0, 0, 0]];
        TruthTable::from_fn(4, 1, |x| {
            rows[(x & 0b11) as usize][((x >> 2) & 0b11) as usize]
        })
        .unwrap()
    }

    #[test]
    fn paper_example1_decomposes_with_expected_vectors() {
        let f = paper_example1_fn();
        let p = Partition::new(4, 0b1100).unwrap();
        let d = exact_decompose(&f, p).unwrap().expect("decomposable");
        assert_eq!(d.pattern(), &[false, true, true, false]);
        assert_eq!(
            d.types(),
            &[
                RowType::Pattern,
                RowType::Complement,
                RowType::AllOne,
                RowType::AllZero
            ]
        );
        assert_eq!(d.to_truth_table(), f);
    }

    #[test]
    fn paper_example2_exact_and_bto() {
        // Fig. 2(a): V = (1,1,1,0), T = (3,2,3,3) — decomposable exactly;
        // forcing all rows to type 3 flips exactly one cell.
        let rows: [[u32; 4]; 4] = [[1, 1, 1, 0], [1, 1, 1, 1], [1, 1, 1, 0], [1, 1, 1, 0]];
        let f = TruthTable::from_fn(4, 1, |x| {
            rows[(x & 0b11) as usize][((x >> 2) & 0b11) as usize]
        })
        .unwrap();
        let p = Partition::new(4, 0b1100).unwrap();
        let d = exact_decompose(&f, p).unwrap().expect("decomposable");
        assert_eq!(d.pattern(), &[true, true, true, false]);
        assert_eq!(
            d.types(),
            &[
                RowType::Pattern,
                RowType::AllOne,
                RowType::Pattern,
                RowType::Pattern
            ]
        );
        // BTO restriction: one wrong cell out of 16.
        let dist = InputDistribution::uniform(4).unwrap();
        let costs = bit_costs(&f, &f, 0, &dist, LsbFill::FromApprox).unwrap();
        let (err, bto) = crate::opt_for_part::opt_for_part_bto(&costs, p).unwrap();
        assert!((err - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(bto.pattern(), &[true, true, true, false]);
    }

    #[test]
    fn random_decomposable_functions_are_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let bound = 0b0110100u32;
            let f = random_decomposable(7, bound, &mut rng).unwrap();
            let p = Partition::new(7, bound).unwrap();
            let d = exact_decompose(&f, p).unwrap().expect("decomposable");
            assert_eq!(d.to_truth_table(), f);
        }
    }

    #[test]
    fn non_decomposable_function_is_rejected() {
        // A 3-input majority has no disjoint decomposition with |B| = 2:
        // chart rows for any partition contain 3 distinct non-complementary
        // patterns.
        let maj = TruthTable::from_fn(3, 1, |x| u32::from(x.count_ones() >= 2)).unwrap();
        for mask in [0b011u32, 0b101, 0b110] {
            let p = Partition::new(3, mask).unwrap();
            assert!(!is_decomposable(&maj, p).unwrap(), "mask {mask:03b}");
        }
    }

    #[test]
    fn constant_function_is_trivially_decomposable() {
        let f = TruthTable::from_fn(4, 1, |_| 1).unwrap();
        let p = Partition::new(4, 0b0011).unwrap();
        let d = exact_decompose(&f, p).unwrap().expect("decomposable");
        assert!(d.types().iter().all(|&t| t == RowType::AllOne));
    }

    #[test]
    fn xor_decomposes_under_any_partition() {
        let f = TruthTable::from_fn(6, 1, |x| x.count_ones() % 2).unwrap();
        for mask in [0b000111u32, 0b101010, 0b110001] {
            let p = Partition::new(6, mask).unwrap();
            let d = exact_decompose(&f, p).unwrap().expect("xor decomposes");
            assert_eq!(d.to_truth_table(), f);
        }
    }

    #[test]
    fn brute_force_error_is_a_true_lower_bound() {
        let mut frng = StdRng::seed_from_u64(17);
        let mut rng = StdRng::seed_from_u64(18);
        for _ in 0..5 {
            let g = random_table(5, 3, &mut frng).unwrap();
            let dist = InputDistribution::uniform(5).unwrap();
            let costs = bit_costs(&g, &g, 1, &dist, LsbFill::FromApprox).unwrap();
            let p = Partition::new(5, 0b00011).unwrap();
            let (bf_err, bf) = brute_force_optimal(&costs, p).unwrap();
            assert!((column_error(&costs, &bf.to_bit_column()) - bf_err).abs() < 1e-12);
            // Any random decomposition must be at least as bad.
            for _ in 0..20 {
                let v: Vec<bool> = (0..p.cols()).map(|_| rng.random()).collect();
                let types: Vec<RowType> = (0..p.rows())
                    .map(|_| RowType::from_code(rng.random_range(1..=4)).unwrap())
                    .collect();
                let d = DisjointDecomp::new(p, v, types).unwrap();
                assert!(column_error(&costs, &d.to_bit_column()) >= bf_err - 1e-12);
            }
        }
    }

    #[test]
    fn exact_decompose_zero_cost_under_its_own_costs() {
        let mut rng = StdRng::seed_from_u64(91);
        let bound = 0b00110u32;
        let f = random_decomposable(5, bound, &mut rng).unwrap();
        let p = Partition::new(5, bound).unwrap();
        let dist = InputDistribution::uniform(5).unwrap();
        let costs = bit_costs(&f, &f, 0, &dist, LsbFill::FromApprox).unwrap();
        let (err, _) = brute_force_optimal(&costs, p).unwrap();
        assert!(err < 1e-12);
    }
}
