//! `OptForPart`: optimise the pattern vector `V` and type vector `T` of an
//! approximate decomposition for a fixed variable partition (paper §II-B),
//! plus the BTO-restricted (§IV-A) and non-disjoint (§IV-B1) variants.
//!
//! # Kernel engineering
//!
//! The alternating `(V, T)` minimisation is the innermost loop of both
//! search algorithms: it runs once per newly visited partition × `Z`
//! restarts × up to `max_iters` alternation steps. The fast kernel here
//! (see DESIGN.md §6, "Kernel engineering") is:
//!
//! * **bit-packed** — the pattern vector `V` lives in `u64` words, and the
//!   per-row cost of type 3 is `t3[r] = s0[r] + Σ_{c ∈ V} diff[r·cols+c]`
//!   over a contiguous row-major `diff = c1 − c0` array, summed
//!   word-at-a-time over the set bits (no per-cell `if vc` branch) and
//!   over whichever of `V` / `¬V` has fewer bits set (the other side
//!   follows from the row total `s1 − s0`);
//! * **allocation-free** — one [`Scratch`] buffer set is allocated per
//!   `opt_for_part` call and threaded through the BTO seed, the ideal-row
//!   seeds and all `Z` random restarts;
//! * **delta-updated on both sides of the alternation** — the per-column
//!   accumulator that decides the next pattern bit
//!   (`acc[c] = Σ_{type-3 rows} diff − Σ_{type-4 rows} diff`) is
//!   maintained incrementally from only the rows whose [`RowType`]
//!   changed in the last half-step, and the per-row masked sums are
//!   maintained incrementally from only the pattern bits that *flipped*
//!   (walked over a column-major copy of `diff`, so one flip touches one
//!   contiguous column), instead of rescanning the whole chart each
//!   iteration;
//! * **built in one streaming pass** — the 2-D chart is laid out by
//!   inverting the partition's scatter table into rank lookup tables and
//!   walking the per-input costs in input order, so the large cost arrays
//!   are read sequentially instead of gathered cell-by-cell.
//!
//! The straightforward kernel the project started with is retained under
//! `#[cfg(any(test, feature = "ref-kernel"))]` as
//! [`reference::opt_for_part_ref`] and differential-tested against the
//! fast path. The two kernels may disagree on exact tie-breaks (their
//! floating-point summation orders differ), but both are deterministic
//! for a fixed RNG seed and report errors faithful to the materialised
//! bit column.

use crate::cost::BitCosts;
use crate::error::{check_widths, DecompError};
use crate::setting::{reduce_mask, BtoDecomp, DisjointDecomp, NonDisjointDecomp, RowType};
use dalut_boolfn::Partition;
use rand::Rng;
use std::collections::HashSet;

/// Tuning knobs for the alternating `(V, T)` optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptParams {
    /// Number of random initial pattern vectors `Z` (paper uses 30).
    pub restarts: usize,
    /// Safety cap on alternating iterations per restart (the loop
    /// terminates as soon as the error stops improving; the paper's
    /// alternation always converges because the error is non-increasing).
    pub max_iters: usize,
}

impl Default for OptParams {
    fn default() -> Self {
        Self {
            restarts: 30,
            max_iters: 64,
        }
    }
}

impl OptParams {
    /// Paper-scale parameters (`Z = 30`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced parameters for fast runs.
    pub fn fast() -> Self {
        Self {
            restarts: 6,
            max_iters: 32,
        }
    }
}

/// Number of pattern bits per packed word.
const WORD_BITS: usize = 64;

/// The per-input costs laid out in the 2-D chart of a partition, reduced
/// to the quantities the alternating kernel actually needs: the row-major
/// `diff = c1 − c0` array, per-row sums of `c0`/`c1`, and per-column sums
/// of `c0`/`c1` (the closed-form BTO accumulators).
struct Cost2d {
    rows: usize,
    cols: usize,
    /// Packed words per pattern vector, `ceil(cols / 64)`.
    words: usize,
    /// Row-major `c1 − c0`.
    diff: Vec<f64>,
    /// Column-major copy of `diff` (`diff_t[c·rows + r]`): flipping one
    /// pattern bit touches one contiguous column of this array.
    diff_t: Vec<f64>,
    /// Per-row sum of `c0` (cost of an all-zero row).
    s0: Vec<f64>,
    /// Per-row sum of `c1` (cost of an all-one row).
    s1: Vec<f64>,
    /// Per-column sum of `c0` (BTO accumulator `d0`).
    col_d0: Vec<f64>,
    /// Per-column sum of `c1` (BTO accumulator `d1`).
    col_d1: Vec<f64>,
}

/// The ±1 contribution of a row type to the pattern-choice accumulator.
#[inline]
fn type_weight(t: RowType) -> f64 {
    match t {
        RowType::Pattern => 1.0,
        RowType::Complement => -1.0,
        RowType::AllZero | RowType::AllOne => 0.0,
    }
}

impl Cost2d {
    fn new(costs: &BitCosts, partition: Partition) -> Self {
        debug_assert_eq!(costs.inputs, partition.n());
        let st = partition.scatter_table();
        let (rows, cols) = (st.rows(), st.cols());
        let words = cols.div_ceil(WORD_BITS);
        // Invert the scatter table into rank LUTs so the chart can be
        // built in one pass over `c0`/`c1` in input order: the cost reads
        // become sequential streams (the hardware prefetcher's best case)
        // and the rank reads touch only `rows + cols` distinct entries,
        // which stay cache-hot. The parts arrays are ascending (bit
        // deposit is monotone), so each accumulator below still sums in
        // the same order as a row-outer/column-inner chart walk and the
        // result is bit-identical to the reference kernel's.
        let n_inputs = partition.n();
        let bound = partition.bound_mask() as usize;
        let free = ((1usize << n_inputs) - 1) ^ bound;
        let mut row_rank = vec![0u32; 1usize << n_inputs];
        let mut col_rank = vec![0u32; 1usize << n_inputs];
        for (r, &rb) in st.row_parts().iter().enumerate() {
            row_rank[rb as usize] = r as u32;
        }
        for (c, &cb) in st.col_parts().iter().enumerate() {
            col_rank[cb as usize] = c as u32;
        }
        let mut diff = vec![0.0f64; rows * cols];
        let mut diff_t = vec![0.0f64; rows * cols];
        let mut s0 = vec![0.0f64; rows];
        let mut s1 = vec![0.0f64; rows];
        let mut col_d0 = vec![0.0f64; cols];
        let mut col_d1 = vec![0.0f64; cols];
        for (x, (&a, &b)) in costs.c0.iter().zip(&costs.c1).enumerate() {
            let r = row_rank[x & free] as usize;
            let c = col_rank[x & bound] as usize;
            let d = b - a;
            diff[r * cols + c] = d;
            diff_t[c * rows + r] = d;
            s0[r] += a;
            s1[r] += b;
            col_d0[c] += a;
            col_d1[c] += b;
        }
        Self {
            rows,
            cols,
            words,
            diff,
            diff_t,
            s0,
            s1,
            col_d0,
            col_d1,
        }
    }

    /// Mask of the valid bits in the last pattern word.
    #[inline]
    fn tail_mask(&self) -> u64 {
        let rem = self.cols % WORD_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Recomputes the per-row masked sums `masked[r] = Σ_{c ∈ V} diff[r,c]`
    /// for a packed pattern, walking whichever of the pattern and its
    /// complement has fewer bits set (the full row sum is `s1[r] − s0[r]`,
    /// so the larger side follows by subtraction). Each visited bit adds
    /// one contiguous `diff_t` column into all row accumulators at once.
    fn masked_from_pattern(&self, pattern: &[u64], masked: &mut [f64]) {
        debug_assert_eq!(pattern.len(), self.words);
        debug_assert_eq!(masked.len(), self.rows);
        let ones: u32 = pattern.iter().map(|w| w.count_ones()).sum();
        let sum_complement = (ones as usize) > self.cols / 2;
        let tail = self.tail_mask();
        masked.fill(0.0);
        for (wi, &word) in pattern.iter().enumerate() {
            let base = wi * WORD_BITS;
            let mut w = if sum_complement { !word } else { word };
            if sum_complement && wi == self.words - 1 {
                w &= tail;
            }
            while w != 0 {
                let c = base + w.trailing_zeros() as usize;
                let col = &self.diff_t[c * self.rows..(c + 1) * self.rows];
                for (m, &d) in masked.iter_mut().zip(col) {
                    *m += d;
                }
                w &= w - 1;
            }
        }
        if sum_complement {
            for (r, m) in masked.iter_mut().enumerate() {
                *m = (self.s1[r] - self.s0[r]) - *m;
            }
        }
    }

    /// Delta-updates the per-row masked sums from only the pattern bits
    /// that differ between `old` and `new`. One flipped bit walks one
    /// contiguous `diff_t` column.
    fn apply_flip_deltas(&self, old: &[u64], new: &[u64], masked: &mut [f64]) {
        for (wi, (&ow, &nw)) in old.iter().zip(new).enumerate() {
            let base = wi * WORD_BITS;
            let mut flips = ow ^ nw;
            while flips != 0 {
                let c = base + flips.trailing_zeros() as usize;
                let col = &self.diff_t[c * self.rows..(c + 1) * self.rows];
                if nw >> (c - base) & 1 == 1 {
                    for (m, &d) in masked.iter_mut().zip(col) {
                        *m += d;
                    }
                } else {
                    for (m, &d) in masked.iter_mut().zip(col) {
                        *m -= d;
                    }
                }
                flips &= flips - 1;
            }
        }
    }

    /// For fixed per-row masked sums, writes the best type per row into
    /// `types` and returns the total error.
    fn types_from_masked(&self, masked: &[f64], types: &mut [RowType]) -> f64 {
        debug_assert_eq!(masked.len(), self.rows);
        debug_assert_eq!(types.len(), self.rows);
        let mut total = 0.0;
        for (r, (&m, t_out)) in masked.iter().zip(types.iter_mut()).enumerate() {
            let t3 = self.s0[r] + m;
            let t4 = self.s0[r] + self.s1[r] - t3;
            let mut best = (self.s0[r], RowType::AllZero);
            for cand in [
                (self.s1[r], RowType::AllOne),
                (t3, RowType::Pattern),
                (t4, RowType::Complement),
            ] {
                if cand.0 < best.0 {
                    best = cand;
                }
            }
            total += best.0;
            *t_out = best.1;
        }
        total
    }

    /// Rebuilds the per-column pattern-choice accumulator
    /// `acc[c] = Σ_{type-3 rows} diff[r,c] − Σ_{type-4 rows} diff[r,c]`
    /// from scratch for the given type vector.
    fn init_acc(&self, types: &[RowType], acc: &mut [f64]) {
        acc.fill(0.0);
        for (r, &t) in types.iter().enumerate() {
            let row = &self.diff[r * self.cols..(r + 1) * self.cols];
            match t {
                RowType::Pattern => {
                    for (a, &d) in acc.iter_mut().zip(row) {
                        *a += d;
                    }
                }
                RowType::Complement => {
                    for (a, &d) in acc.iter_mut().zip(row) {
                        *a -= d;
                    }
                }
                RowType::AllZero | RowType::AllOne => {}
            }
        }
    }

    /// Delta-updates the accumulator from only the rows whose type (more
    /// precisely, whose ±1 pattern weight) changed between `old` and
    /// `new`; rows with an unchanged weight cost nothing.
    fn apply_type_deltas(&self, old: &[RowType], new: &[RowType], acc: &mut [f64]) {
        for (r, (&o, &n)) in old.iter().zip(new).enumerate() {
            let delta = type_weight(n) - type_weight(o);
            if delta != 0.0 {
                let row = &self.diff[r * self.cols..(r + 1) * self.cols];
                for (a, &d) in acc.iter_mut().zip(row) {
                    *a += delta * d;
                }
            }
        }
    }

    /// Closed-form BTO optimum: writes the packed per-column-optimal
    /// pattern into `words` and returns its error (all rows type 3).
    fn bto_pattern_into(&self, words: &mut [u64]) -> f64 {
        words.fill(0);
        let mut err = 0.0;
        for (c, (&a, &b)) in self.col_d0.iter().zip(&self.col_d1).enumerate() {
            err += a.min(b);
            if b < a {
                words[c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
            }
        }
        err
    }

    /// Distinct non-constant rows of the *ideal-choice chart* (each cell
    /// takes its cheaper value), used to seed the alternating optimisation.
    /// When the costs come from an exactly decomposable bit, these rows are
    /// precisely the true pattern vector `V` and/or its complement, so
    /// seeding with them makes the optimiser exact on decomposable charts.
    ///
    /// Rows are deduplicated on packed `u64` keys canonicalised so a row
    /// and its complement map to one key — an O(rows) hash scan instead of
    /// the former O(seeds²) `Vec<Vec<bool>>` containment scan.
    fn ideal_row_seeds(&self, cap: usize) -> Vec<Vec<u64>> {
        let mut seeds: Vec<Vec<u64>> = Vec::new();
        let mut keys: HashSet<Vec<u64>> = HashSet::new();
        let tail = self.tail_mask();
        let mut row_words = vec![0u64; self.words];
        for r in 0..self.rows {
            if seeds.len() >= cap {
                break;
            }
            row_words.fill(0);
            let row = &self.diff[r * self.cols..(r + 1) * self.cols];
            for (c, &d) in row.iter().enumerate() {
                if d < 0.0 {
                    row_words[c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
                }
            }
            let all_zero = row_words.iter().all(|&w| w == 0);
            let all_one = row_words[..self.words - 1].iter().all(|&w| w == u64::MAX)
                && row_words[self.words - 1] == tail;
            if all_zero || all_one {
                continue;
            }
            let mut comp: Vec<u64> = row_words.iter().map(|&w| !w).collect();
            comp[self.words - 1] &= tail;
            let canonical = if comp < row_words {
                comp
            } else {
                row_words.clone()
            };
            if keys.insert(canonical) {
                seeds.push(row_words.clone());
            }
        }
        seeds
    }
}

/// Derives the next packed pattern from the column accumulator: bit `c`
/// is set exactly when `acc[c] < 0` (type-3 rows prefer 1 there).
fn pack_pattern_from_acc(acc: &[f64], words: &mut [u64]) {
    words.fill(0);
    for (c, &a) in acc.iter().enumerate() {
        words[c / WORD_BITS] |= u64::from(a < 0.0) << (c % WORD_BITS);
    }
}

/// Unpacks a pattern word vector into the `Vec<bool>` the decomposition
/// types store.
fn unpack_pattern(words: &[u64], cols: usize) -> Vec<bool> {
    (0..cols)
        .map(|c| (words[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1)
        .collect()
}

/// Reusable buffers for one `opt_for_part` call: every restart and seed
/// evaluation runs through these, so the alternation allocates nothing.
struct Scratch {
    /// Seed slot the caller fills before each [`Scratch::consider`].
    seed: Vec<u64>,
    /// Current packed pattern of the running alternation.
    pattern: Vec<u64>,
    /// Candidate pattern of the next half-step.
    next: Vec<u64>,
    /// Current type vector.
    types: Vec<RowType>,
    /// Candidate type vector of the next half-step.
    types_next: Vec<RowType>,
    /// Per-column pattern-choice accumulator for the current types.
    acc: Vec<f64>,
    /// Per-row masked sums `Σ_{c ∈ V} diff[r,c]` of the running pattern.
    masked: Vec<f64>,
    /// Best error over every start considered so far.
    best_err: f64,
    /// Pattern achieving `best_err`.
    best_pattern: Vec<u64>,
    /// Types achieving `best_err`.
    best_types: Vec<RowType>,
}

impl Scratch {
    fn new(chart: &Cost2d) -> Self {
        Self {
            seed: vec![0; chart.words],
            pattern: vec![0; chart.words],
            next: vec![0; chart.words],
            types: vec![RowType::AllZero; chart.rows],
            types_next: vec![RowType::AllZero; chart.rows],
            acc: vec![0.0; chart.cols],
            masked: vec![0.0; chart.rows],
            best_err: f64::INFINITY,
            best_pattern: vec![0; chart.words],
            best_types: vec![RowType::AllZero; chart.rows],
        }
    }

    /// Runs the alternating minimisation from the pattern currently in
    /// `self.seed` and folds the converged result into the running best.
    /// Returns the number of alternation iterations performed.
    fn consider(&mut self, chart: &Cost2d, max_iters: usize) -> u64 {
        self.pattern.copy_from_slice(&self.seed);
        chart.masked_from_pattern(&self.pattern, &mut self.masked);
        let mut err = chart.types_from_masked(&self.masked, &mut self.types);
        chart.init_acc(&self.types, &mut self.acc);
        let mut iters = 0u64;
        for _ in 0..max_iters {
            iters += 1;
            pack_pattern_from_acc(&self.acc, &mut self.next);
            chart.apply_flip_deltas(&self.pattern, &self.next, &mut self.masked);
            let err2 = chart.types_from_masked(&self.masked, &mut self.types_next);
            if err2 + 1e-15 >= err {
                break;
            }
            chart.apply_type_deltas(&self.types, &self.types_next, &mut self.acc);
            std::mem::swap(&mut self.pattern, &mut self.next);
            std::mem::swap(&mut self.types, &mut self.types_next);
            err = err2;
        }
        if err < self.best_err {
            self.best_err = err;
            self.best_pattern.copy_from_slice(&self.pattern);
            self.best_types.copy_from_slice(&self.types);
        }
        iters
    }
}

/// Optimises `(V, T)` for a fixed partition by alternating minimisation
/// from `Z` random initial patterns plus the closed-form BTO pattern (so
/// the result never loses to the BTO-restricted optimum) and the distinct
/// ideal-choice chart rows (so exactly decomposable charts are solved to
/// zero error). Returns the achieved error and the decomposition.
///
/// # Errors
///
/// Returns [`DecompError::WidthMismatch`] if `costs.inputs != partition.n()`.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{InputDistribution, Partition, TruthTable};
/// use dalut_decomp::{bit_costs, opt_for_part, LsbFill, OptParams};
/// use rand::SeedableRng;
///
/// // XOR of all inputs decomposes exactly under any partition.
/// let f = TruthTable::from_fn(6, 1, |x| x.count_ones() % 2).unwrap();
/// let dist = InputDistribution::uniform(6).unwrap();
/// let costs = bit_costs(&f, &f, 0, &dist, LsbFill::FromApprox).unwrap();
/// let part = Partition::new(6, 0b000111).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let (err, d) = opt_for_part(&costs, part, OptParams::fast(), &mut rng).unwrap();
/// assert_eq!(err, 0.0);
/// assert_eq!(d.to_truth_table(), f);
/// ```
pub fn opt_for_part(
    costs: &BitCosts,
    partition: Partition,
    params: OptParams,
    rng: &mut impl Rng,
) -> Result<(f64, DisjointDecomp), DecompError> {
    check_widths(costs, partition)?;
    let chart = Cost2d::new(costs, partition);
    let mut scratch = Scratch::new(&chart);

    // Seed with the BTO optimum (guarantees normal-mode error <= BTO error)
    // and with distinct rows of the ideal-choice chart (guarantees exactly
    // decomposable charts are solved to zero error).
    let mut alternations = 0u64;
    chart.bto_pattern_into(&mut scratch.seed);
    alternations += scratch.consider(&chart, params.max_iters);
    for seed in chart.ideal_row_seeds(params.restarts.max(8)) {
        scratch.seed.copy_from_slice(&seed);
        alternations += scratch.consider(&chart, params.max_iters);
    }
    for _ in 0..params.restarts {
        scratch.seed.fill(0);
        for c in 0..chart.cols {
            scratch.seed[c / WORD_BITS] |= u64::from(rng.random::<bool>()) << (c % WORD_BITS);
        }
        alternations += scratch.consider(&chart, params.max_iters);
    }
    crate::kernel_stats::record(params.restarts as u64, alternations);

    debug_assert!(
        scratch.best_err.is_finite(),
        "BTO seed is always considered"
    );
    let pattern = unpack_pattern(&scratch.best_pattern, chart.cols);
    // Invariant, not fallible: pattern length is chart.cols and the type
    // vector is chart.rows long, both derived from this very partition.
    let decomp = DisjointDecomp::new(partition, pattern, scratch.best_types)
        .expect("dimensions match the partition by construction");
    Ok((scratch.best_err, decomp))
}

/// BTO-restricted `OptForPart` (paper §IV-A): all rows are forced to type
/// 3, so the optimal pattern is closed-form per column. Deterministic.
///
/// # Errors
///
/// Returns [`DecompError::WidthMismatch`] if `costs.inputs != partition.n()`.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{InputDistribution, Partition, TruthTable};
/// use dalut_decomp::{bit_costs, opt_for_part_bto, LsbFill};
///
/// // A function depending only on the bound set is BTO-exact.
/// let f = TruthTable::from_fn(5, 1, |x| (x >> 1) & 1).unwrap();
/// let dist = InputDistribution::uniform(5).unwrap();
/// let costs = bit_costs(&f, &f, 0, &dist, LsbFill::FromApprox).unwrap();
/// let part = Partition::new(5, 0b00011).unwrap(); // B = {x0, x1}
/// let (err, bto) = opt_for_part_bto(&costs, part).unwrap();
/// assert_eq!(err, 0.0);
/// assert_eq!(bto.pattern(), &[false, false, true, true]);
/// ```
pub fn opt_for_part_bto(
    costs: &BitCosts,
    partition: Partition,
) -> Result<(f64, BtoDecomp), DecompError> {
    check_widths(costs, partition)?;
    let chart = Cost2d::new(costs, partition);
    let mut words = vec![0u64; chart.words];
    let err = chart.bto_pattern_into(&mut words);
    crate::kernel_stats::record(0, 0);
    Ok((
        err,
        // Invariant, not fallible: the unpacked pattern has chart.cols bits
        // by construction.
        BtoDecomp::new(partition, unpack_pattern(&words, chart.cols))
            .expect("dimensions match by construction"),
    ))
}

/// Non-disjoint `OptForPart` (paper §IV-B1): tries every bound variable as
/// the shared bit `x_s`, solves the two conditional disjoint sub-problems
/// independently (their probability-weighted costs simply add, Eq. (2)),
/// and keeps the best. Returns `Ok(None)` if the bound set has a single
/// variable (no reduced bound set would remain).
///
/// # Errors
///
/// Returns [`DecompError::WidthMismatch`] if `costs.inputs != partition.n()`.
pub fn opt_for_part_nd(
    costs: &BitCosts,
    partition: Partition,
    params: OptParams,
    rng: &mut impl Rng,
) -> Result<Option<(f64, NonDisjointDecomp)>, DecompError> {
    check_widths(costs, partition)?;
    if partition.bound_size() < 2 {
        return Ok(None);
    }
    let mut best: Option<(f64, NonDisjointDecomp)> = None;
    for &s in &partition.bound_vars() {
        let s = s as usize;
        let reduced_bound = reduce_mask(partition.bound_mask() & !(1u32 << s), s);
        // Invariant, not fallible: bound_size() >= 2, so removing one bound
        // variable leaves a non-empty proper subset over n - 1 inputs.
        let reduced = Partition::new(partition.n() - 1, reduced_bound)
            .expect("reduced bound set is a proper non-empty subset");
        let (costs0, costs1) = costs.split_on_bit(s);
        let (e0, d0) = opt_for_part(&costs0, reduced, params, rng)?;
        let (e1, d1) = opt_for_part(&costs1, reduced, params, rng)?;
        let err = e0 + e1;
        if best.as_ref().is_none_or(|(e, _)| err < *e) {
            // Invariant, not fallible: both halves were just solved over the
            // reduction of this very partition.
            let nd = NonDisjointDecomp::new(partition, s, d0, d1)
                .expect("halves built over the reduction of the partition");
            best = Some((err, nd));
        }
    }
    Ok(best)
}

/// The straightforward `OptForPart` kernel the project started with,
/// retained as a differential-testing oracle and as the baseline the
/// `perfreport` harness and the Criterion benches measure speedups
/// against. Enabled in tests and under the `ref-kernel` feature.
#[cfg(any(test, feature = "ref-kernel"))]
pub mod reference {
    use super::{
        check_widths, BitCosts, DecompError, DisjointDecomp, OptParams, Partition, Rng, RowType,
    };

    /// The per-input costs laid out in the 2-D chart of a partition, with
    /// cached row sums (reference layout: separate `c0`/`c1` arrays).
    struct RefCost2d {
        rows: usize,
        cols: usize,
        c0: Vec<f64>,
        c1: Vec<f64>,
        s0: Vec<f64>,
        s1: Vec<f64>,
    }

    impl RefCost2d {
        fn new(costs: &BitCosts, partition: Partition) -> Self {
            debug_assert_eq!(costs.inputs, partition.n());
            let st = partition.scatter_table();
            let (rows, cols) = (st.rows(), st.cols());
            let mut c0 = Vec::with_capacity(rows * cols);
            let mut c1 = Vec::with_capacity(rows * cols);
            let mut s0 = Vec::with_capacity(rows);
            let mut s1 = Vec::with_capacity(rows);
            for r in 0..rows {
                let base = st.row_bits(r);
                let mut sum0 = 0.0;
                let mut sum1 = 0.0;
                for c in 0..cols {
                    let x = (base | st.col_bits(c)) as usize;
                    let (a, b) = (costs.c0[x], costs.c1[x]);
                    c0.push(a);
                    c1.push(b);
                    sum0 += a;
                    sum1 += b;
                }
                s0.push(sum0);
                s1.push(sum1);
            }
            Self {
                rows,
                cols,
                c0,
                c1,
                s0,
                s1,
            }
        }

        fn best_types(&self, v: &[bool]) -> (Vec<RowType>, f64) {
            let mut types = Vec::with_capacity(self.rows);
            let mut total = 0.0;
            for r in 0..self.rows {
                let base = r * self.cols;
                let mut t3 = 0.0;
                for (c, &vc) in v.iter().enumerate() {
                    t3 += if vc {
                        self.c1[base + c]
                    } else {
                        self.c0[base + c]
                    };
                }
                let t4 = self.s0[r] + self.s1[r] - t3;
                let mut best = (self.s0[r], RowType::AllZero);
                for cand in [
                    (self.s1[r], RowType::AllOne),
                    (t3, RowType::Pattern),
                    (t4, RowType::Complement),
                ] {
                    if cand.0 < best.0 {
                        best = cand;
                    }
                }
                total += best.0;
                types.push(best.1);
            }
            (types, total)
        }

        fn best_pattern(&self, types: &[RowType]) -> Vec<bool> {
            let mut d0 = vec![0.0f64; self.cols];
            let mut d1 = vec![0.0f64; self.cols];
            for (r, &t) in types.iter().enumerate() {
                let base = r * self.cols;
                match t {
                    RowType::Pattern => {
                        for c in 0..self.cols {
                            d0[c] += self.c0[base + c];
                            d1[c] += self.c1[base + c];
                        }
                    }
                    RowType::Complement => {
                        for c in 0..self.cols {
                            d0[c] += self.c1[base + c];
                            d1[c] += self.c0[base + c];
                        }
                    }
                    _ => {}
                }
            }
            d0.iter().zip(&d1).map(|(&a, &b)| b < a).collect()
        }

        fn ideal_row_seeds(&self, cap: usize) -> Vec<Vec<bool>> {
            let mut seeds: Vec<Vec<bool>> = Vec::new();
            for r in 0..self.rows {
                if seeds.len() >= cap {
                    break;
                }
                let base = r * self.cols;
                let row: Vec<bool> = (0..self.cols)
                    .map(|c| self.c1[base + c] < self.c0[base + c])
                    .collect();
                if row.iter().all(|&v| v) || row.iter().all(|&v| !v) {
                    continue;
                }
                let complement: Vec<bool> = row.iter().map(|&v| !v).collect();
                if !seeds.contains(&row) && !seeds.contains(&complement) {
                    seeds.push(row);
                }
            }
            seeds
        }

        fn bto_optimum(&self) -> (Vec<bool>, f64) {
            let mut d0 = vec![0.0f64; self.cols];
            let mut d1 = vec![0.0f64; self.cols];
            for r in 0..self.rows {
                let base = r * self.cols;
                for c in 0..self.cols {
                    d0[c] += self.c0[base + c];
                    d1[c] += self.c1[base + c];
                }
            }
            let mut err = 0.0;
            let v = d0
                .iter()
                .zip(&d1)
                .map(|(&a, &b)| {
                    err += a.min(b);
                    b < a
                })
                .collect();
            (v, err)
        }
    }

    /// Reference `OptForPart` (pre-optimisation kernel): alternating
    /// `(V, T)` minimisation over `Vec<bool>` patterns with per-restart
    /// allocations. Semantically equivalent to
    /// [`opt_for_part`](super::opt_for_part); kept for differential tests
    /// and speedup measurements.
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::WidthMismatch`] if
    /// `costs.inputs != partition.n()`.
    pub fn opt_for_part_ref(
        costs: &BitCosts,
        partition: Partition,
        params: OptParams,
        rng: &mut impl Rng,
    ) -> Result<(f64, DisjointDecomp), DecompError> {
        check_widths(costs, partition)?;
        let chart = RefCost2d::new(costs, partition);
        let mut best: Option<(f64, Vec<bool>, Vec<RowType>)> = None;

        let consider =
            |v: Vec<bool>, chart: &RefCost2d, best: &mut Option<(f64, Vec<bool>, Vec<RowType>)>| {
                let (mut types, mut err) = chart.best_types(&v);
                let mut v = v;
                for _ in 0..params.max_iters {
                    let v2 = chart.best_pattern(&types);
                    let (types2, err2) = chart.best_types(&v2);
                    if err2 + 1e-15 >= err {
                        break;
                    }
                    v = v2;
                    types = types2;
                    err = err2;
                }
                if best.as_ref().is_none_or(|(e, _, _)| err < *e) {
                    *best = Some((err, v, types));
                }
            };

        let (bto_v, _) = chart.bto_optimum();
        consider(bto_v, &chart, &mut best);
        for seed in chart.ideal_row_seeds(params.restarts.max(8)) {
            consider(seed, &chart, &mut best);
        }
        for _ in 0..params.restarts {
            let v: Vec<bool> = (0..chart.cols).map(|_| rng.random()).collect();
            consider(v, &chart, &mut best);
        }

        // Invariants, not fallible: the BTO seed is always considered, and
        // the winning pattern/types were sized by this very chart.
        let (err, v, types) = best.expect("at least one start is always considered");
        let decomp = DisjointDecomp::new(partition, v, types)
            .expect("dimensions match the partition by construction");
        Ok((err, decomp))
    }
}

#[cfg(test)]
mod tests {
    use super::reference::opt_for_part_ref;
    use super::*;
    use crate::cost::{bit_costs, column_error, LsbFill};
    use dalut_boolfn::builder::{random_decomposable, random_table};
    use dalut_boolfn::{InputDistribution, TruthTable};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn costs_for(g: &TruthTable, bit: usize) -> BitCosts {
        let dist = InputDistribution::uniform(g.inputs()).unwrap();
        bit_costs(g, g, bit, &dist, LsbFill::FromApprox).unwrap()
    }

    #[test]
    fn reported_error_matches_materialised_column() {
        let mut rng = StdRng::seed_from_u64(42);
        for seed in 0..5u64 {
            let mut frng = StdRng::seed_from_u64(seed);
            let g = random_table(6, 4, &mut frng).unwrap();
            let costs = costs_for(&g, 2);
            let p = Partition::new(6, 0b000111).unwrap();
            let (err, d) = opt_for_part(&costs, p, OptParams::fast(), &mut rng).unwrap();
            let col = d.to_bit_column();
            assert!(
                (column_error(&costs, &col) - err).abs() < 1e-12,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn exactly_decomposable_function_reaches_zero_error() {
        let mut frng = StdRng::seed_from_u64(9);
        let mut rng = StdRng::seed_from_u64(100);
        for _ in 0..10 {
            let bound = 0b011010u32;
            let f = random_decomposable(6, bound, &mut frng).unwrap();
            let costs = costs_for(&f, 0);
            let p = Partition::new(6, bound).unwrap();
            let (err, d) = opt_for_part(&costs, p, OptParams::default(), &mut rng).unwrap();
            assert!(err < 1e-12, "exact decomposition not found, err={err}");
            // The decomposition must reproduce f exactly.
            assert_eq!(d.to_truth_table(), f);
        }
    }

    #[test]
    fn normal_never_worse_than_bto() {
        let mut frng = StdRng::seed_from_u64(77);
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..10 {
            let g = random_table(7, 5, &mut frng).unwrap();
            let costs = costs_for(&g, 3);
            let p = Partition::random(7, 3, &mut frng);
            let (e_norm, _) = opt_for_part(&costs, p, OptParams::fast(), &mut rng).unwrap();
            let (e_bto, _) = opt_for_part_bto(&costs, p).unwrap();
            assert!(
                e_norm <= e_bto + 1e-12,
                "normal {e_norm} worse than BTO {e_bto}"
            );
        }
    }

    #[test]
    fn error_never_below_ideal_bound() {
        let mut frng = StdRng::seed_from_u64(5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let g = random_table(6, 6, &mut frng).unwrap();
            let costs = costs_for(&g, 4);
            let p = Partition::random(6, 3, &mut frng);
            let ideal = costs.ideal_error();
            let (e, _) = opt_for_part(&costs, p, OptParams::fast(), &mut rng).unwrap();
            assert!(e >= ideal - 1e-12);
            let (eb, _) = opt_for_part_bto(&costs, p).unwrap();
            assert!(eb >= ideal - 1e-12);
        }
    }

    #[test]
    fn bto_error_matches_materialised_column() {
        let mut frng = StdRng::seed_from_u64(21);
        let g = random_table(6, 4, &mut frng).unwrap();
        let costs = costs_for(&g, 1);
        let p = Partition::new(6, 0b110100).unwrap();
        let (err, b) = opt_for_part_bto(&costs, p).unwrap();
        assert!((column_error(&costs, &b.to_bit_column()) - err).abs() < 1e-12);
    }

    #[test]
    fn bto_is_optimal_among_bto_patterns() {
        // Exhaustively check on a tiny chart (b = 2 -> 16 patterns).
        let mut frng = StdRng::seed_from_u64(33);
        let g = random_table(4, 3, &mut frng).unwrap();
        let costs = costs_for(&g, 1);
        let p = Partition::new(4, 0b0011).unwrap();
        let (err, _) = opt_for_part_bto(&costs, p).unwrap();
        for pat in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|c| (pat >> c) & 1 == 1).collect();
            let b = BtoDecomp::new(p, v).unwrap();
            assert!(column_error(&costs, &b.to_bit_column()) >= err - 1e-12);
        }
    }

    #[test]
    fn nd_never_worse_than_normal() {
        // ND can emulate normal (F0 = F1), and each half is solved with the
        // BTO-seeded alternating optimiser, so with the same (deterministic)
        // seeding ND should not lose on these small cases.
        let mut frng = StdRng::seed_from_u64(55);
        for trial in 0..8 {
            let g = random_table(6, 4, &mut frng).unwrap();
            let costs = costs_for(&g, 2);
            let p = Partition::random(6, 3, &mut frng);
            let mut rng1 = StdRng::seed_from_u64(1000 + trial);
            let mut rng2 = StdRng::seed_from_u64(1000 + trial);
            let (e_norm, _) = opt_for_part(&costs, p, OptParams::default(), &mut rng1).unwrap();
            let (e_nd, _) = opt_for_part_nd(&costs, p, OptParams::default(), &mut rng2)
                .unwrap()
                .unwrap();
            assert!(
                e_nd <= e_norm + 1e-9,
                "trial {trial}: nd {e_nd} vs normal {e_norm}"
            );
        }
    }

    #[test]
    fn nd_error_matches_materialised_column() {
        let mut frng = StdRng::seed_from_u64(60);
        let mut rng = StdRng::seed_from_u64(61);
        let g = random_table(7, 4, &mut frng).unwrap();
        let costs = costs_for(&g, 0);
        let p = Partition::new(7, 0b0011101).unwrap();
        let (err, nd) = opt_for_part_nd(&costs, p, OptParams::fast(), &mut rng)
            .unwrap()
            .unwrap();
        assert!((column_error(&costs, &nd.to_bit_column()) - err).abs() < 1e-12);
    }

    #[test]
    fn nd_requires_two_bound_variables() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = TruthTable::from_fn(4, 2, |x| x % 4).unwrap();
        let costs = costs_for(&g, 0);
        let p = Partition::new(4, 0b0001).unwrap();
        assert!(opt_for_part_nd(&costs, p, OptParams::fast(), &mut rng)
            .unwrap()
            .is_none());
    }

    #[test]
    fn width_mismatch_is_a_typed_error_not_a_panic() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = TruthTable::from_fn(5, 2, |x| x % 4).unwrap();
        let costs = costs_for(&g, 0); // 5-input cost table
        let p = Partition::new(6, 0b000111).unwrap(); // 6-input partition
        let expected = crate::error::DecompError::WidthMismatch {
            costs: 5,
            partition: 6,
        };
        assert_eq!(
            opt_for_part(&costs, p, OptParams::fast(), &mut rng).unwrap_err(),
            expected
        );
        assert_eq!(opt_for_part_bto(&costs, p).unwrap_err(), expected);
        assert_eq!(
            opt_for_part_nd(&costs, p, OptParams::fast(), &mut rng).unwrap_err(),
            expected
        );
        assert_eq!(
            opt_for_part_ref(&costs, p, OptParams::fast(), &mut rng).unwrap_err(),
            expected
        );
    }

    #[test]
    fn opt_for_part_finds_global_optimum_on_small_charts() {
        // Brute-force all 2^cols patterns on b = 3 charts and compare.
        let mut frng = StdRng::seed_from_u64(88);
        let mut rng = StdRng::seed_from_u64(89);
        for _ in 0..5 {
            let g = random_table(5, 4, &mut frng).unwrap();
            let costs = costs_for(&g, 2);
            let p = Partition::new(5, 0b00111).unwrap();
            let chart_best = crate::exact::brute_force_optimal(&costs, p).unwrap().0;
            let (err, _) = opt_for_part(&costs, p, OptParams::default(), &mut rng).unwrap();
            assert!(
                (err - chart_best).abs() < 1e-12,
                "alternating {err} vs brute force {chart_best}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut frng = StdRng::seed_from_u64(13);
        let g = random_table(6, 4, &mut frng).unwrap();
        let costs = costs_for(&g, 1);
        let p = Partition::new(6, 0b011100).unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            opt_for_part(&costs, p, OptParams::default(), &mut rng).unwrap()
        };
        let (e1, d1) = run(5);
        let (e2, d2) = run(5);
        assert_eq!(e1, e2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn fast_kernel_matches_reference_on_fixed_seeds() {
        // Differential test at a size where the alternation reliably
        // reaches the chart optimum from the shared deterministic seeds:
        // both kernels must then report the same error.
        let mut frng = StdRng::seed_from_u64(314);
        for trial in 0..6u64 {
            let g = random_table(6, 4, &mut frng).unwrap();
            let costs = costs_for(&g, 2);
            let p = Partition::new(6, 0b000111).unwrap();
            let mut rng_fast = StdRng::seed_from_u64(100 + trial);
            let mut rng_ref = StdRng::seed_from_u64(100 + trial);
            let (e_fast, d_fast) =
                opt_for_part(&costs, p, OptParams::default(), &mut rng_fast).unwrap();
            let (e_ref, _) =
                opt_for_part_ref(&costs, p, OptParams::default(), &mut rng_ref).unwrap();
            assert!(
                (e_fast - e_ref).abs() < 1e-9,
                "trial {trial}: fast {e_fast} vs reference {e_ref}"
            );
            assert!((column_error(&costs, &d_fast.to_bit_column()) - e_fast).abs() < 1e-12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Fast kernel ≡ reference kernel on random 4-variable charts:
        /// both reach the chart optimum from the shared seeding, so the
        /// reported errors agree within 1e-9, and the fast kernel's
        /// reported error is exactly the error of its materialised column.
        #[test]
        fn fast_kernel_equals_reference_kernel(seed: u64, mask in 1u32..15) {
            let mut frng = StdRng::seed_from_u64(seed);
            let g = random_table(4, 3, &mut frng).unwrap();
            let costs = costs_for(&g, 1);
            let p = Partition::new(4, mask).unwrap();
            let mut rng_fast = StdRng::seed_from_u64(seed ^ 0xD1FF);
            let mut rng_ref = StdRng::seed_from_u64(seed ^ 0xD1FF);
            let (e_fast, d) = opt_for_part(&costs, p, OptParams::default(), &mut rng_fast).unwrap();
            let (e_ref, _) = opt_for_part_ref(&costs, p, OptParams::default(), &mut rng_ref).unwrap();
            prop_assert!((e_fast - e_ref).abs() < 1e-9, "fast {} vs ref {}", e_fast, e_ref);
            let col_err = column_error(&costs, &d.to_bit_column());
            prop_assert!((col_err - e_fast).abs() < 1e-12);
        }

        /// The scratch-buffer path stays bit-deterministic for a fixed
        /// seed (regression for `deterministic_given_seed` under the
        /// allocation-free kernel).
        #[test]
        fn scratch_path_deterministic_given_seed(seed: u64, tbl in 0u64..64) {
            let mut frng = StdRng::seed_from_u64(tbl);
            let g = random_table(5, 3, &mut frng).unwrap();
            let costs = costs_for(&g, 1);
            let p = Partition::new(5, 0b00110).unwrap();
            let run = |s| {
                let mut rng = StdRng::seed_from_u64(s);
                opt_for_part(&costs, p, OptParams::fast(), &mut rng).unwrap()
            };
            let (e1, d1) = run(seed);
            let (e2, d2) = run(seed);
            prop_assert_eq!(e1, e2);
            prop_assert_eq!(d1, d2);
        }
    }
}
