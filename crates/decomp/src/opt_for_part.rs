//! `OptForPart`: optimise the pattern vector `V` and type vector `T` of an
//! approximate decomposition for a fixed variable partition (paper §II-B),
//! plus the BTO-restricted (§IV-A) and non-disjoint (§IV-B1) variants.

use crate::cost::BitCosts;
use crate::setting::{reduce_mask, BtoDecomp, DisjointDecomp, NonDisjointDecomp, RowType};
use dalut_boolfn::Partition;
use rand::Rng;

/// Tuning knobs for the alternating `(V, T)` optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptParams {
    /// Number of random initial pattern vectors `Z` (paper uses 30).
    pub restarts: usize,
    /// Safety cap on alternating iterations per restart (the loop
    /// terminates as soon as the error stops improving; the paper's
    /// alternation always converges because the error is non-increasing).
    pub max_iters: usize,
}

impl Default for OptParams {
    fn default() -> Self {
        Self {
            restarts: 30,
            max_iters: 64,
        }
    }
}

impl OptParams {
    /// Paper-scale parameters (`Z = 30`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced parameters for fast runs.
    pub fn fast() -> Self {
        Self {
            restarts: 6,
            max_iters: 32,
        }
    }
}

/// The per-input costs laid out in the 2-D chart of a partition, with
/// cached row sums.
struct Cost2d {
    rows: usize,
    cols: usize,
    /// Row-major cost of cell value 0.
    c0: Vec<f64>,
    /// Row-major cost of cell value 1.
    c1: Vec<f64>,
    /// Per-row sum of `c0` (cost of an all-zero row).
    s0: Vec<f64>,
    /// Per-row sum of `c1` (cost of an all-one row).
    s1: Vec<f64>,
}

impl Cost2d {
    fn new(costs: &BitCosts, partition: Partition) -> Self {
        debug_assert_eq!(costs.inputs, partition.n());
        let st = partition.scatter_table();
        let (rows, cols) = (st.rows(), st.cols());
        let mut c0 = Vec::with_capacity(rows * cols);
        let mut c1 = Vec::with_capacity(rows * cols);
        let mut s0 = Vec::with_capacity(rows);
        let mut s1 = Vec::with_capacity(rows);
        for r in 0..rows {
            let base = st.row_bits(r);
            let mut sum0 = 0.0;
            let mut sum1 = 0.0;
            for c in 0..cols {
                let x = (base | st.col_bits(c)) as usize;
                let (a, b) = (costs.c0[x], costs.c1[x]);
                c0.push(a);
                c1.push(b);
                sum0 += a;
                sum1 += b;
            }
            s0.push(sum0);
            s1.push(sum1);
        }
        Self {
            rows,
            cols,
            c0,
            c1,
            s0,
            s1,
        }
    }

    /// For a fixed pattern `v`, the best type per row and the total error.
    fn best_types(&self, v: &[bool]) -> (Vec<RowType>, f64) {
        let mut types = Vec::with_capacity(self.rows);
        let mut total = 0.0;
        for r in 0..self.rows {
            let base = r * self.cols;
            let mut t3 = 0.0;
            for (c, &vc) in v.iter().enumerate() {
                t3 += if vc {
                    self.c1[base + c]
                } else {
                    self.c0[base + c]
                };
            }
            let t4 = self.s0[r] + self.s1[r] - t3;
            let mut best = (self.s0[r], RowType::AllZero);
            for cand in [
                (self.s1[r], RowType::AllOne),
                (t3, RowType::Pattern),
                (t4, RowType::Complement),
            ] {
                if cand.0 < best.0 {
                    best = cand;
                }
            }
            total += best.0;
            types.push(best.1);
        }
        (types, total)
    }

    /// For fixed types, the best pattern bit per column.
    fn best_pattern(&self, types: &[RowType]) -> Vec<bool> {
        let mut d0 = vec![0.0f64; self.cols];
        let mut d1 = vec![0.0f64; self.cols];
        for (r, &t) in types.iter().enumerate() {
            let base = r * self.cols;
            match t {
                RowType::Pattern => {
                    for c in 0..self.cols {
                        d0[c] += self.c0[base + c];
                        d1[c] += self.c1[base + c];
                    }
                }
                RowType::Complement => {
                    for c in 0..self.cols {
                        d0[c] += self.c1[base + c];
                        d1[c] += self.c0[base + c];
                    }
                }
                _ => {}
            }
        }
        d0.iter().zip(&d1).map(|(&a, &b)| b < a).collect()
    }

    /// Distinct non-constant rows of the *ideal-choice chart* (each cell
    /// takes its cheaper value), used to seed the alternating optimisation.
    /// When the costs come from an exactly decomposable bit, these rows are
    /// precisely the true pattern vector `V` and/or its complement, so
    /// seeding with them makes the optimiser exact on decomposable charts.
    fn ideal_row_seeds(&self, cap: usize) -> Vec<Vec<bool>> {
        let mut seeds: Vec<Vec<bool>> = Vec::new();
        for r in 0..self.rows {
            if seeds.len() >= cap {
                break;
            }
            let base = r * self.cols;
            let row: Vec<bool> = (0..self.cols)
                .map(|c| self.c1[base + c] < self.c0[base + c])
                .collect();
            if row.iter().all(|&v| v) || row.iter().all(|&v| !v) {
                continue;
            }
            let complement: Vec<bool> = row.iter().map(|&v| !v).collect();
            if !seeds.contains(&row) && !seeds.contains(&complement) {
                seeds.push(row);
            }
        }
        seeds
    }

    /// Closed-form BTO optimum: pattern chosen per column, all rows type 3.
    fn bto_optimum(&self) -> (Vec<bool>, f64) {
        let mut d0 = vec![0.0f64; self.cols];
        let mut d1 = vec![0.0f64; self.cols];
        for r in 0..self.rows {
            let base = r * self.cols;
            for c in 0..self.cols {
                d0[c] += self.c0[base + c];
                d1[c] += self.c1[base + c];
            }
        }
        let mut err = 0.0;
        let v = d0
            .iter()
            .zip(&d1)
            .map(|(&a, &b)| {
                err += a.min(b);
                b < a
            })
            .collect();
        (v, err)
    }
}

/// Optimises `(V, T)` for a fixed partition by alternating minimisation
/// from `Z` random initial patterns plus the closed-form BTO pattern (so
/// the result never loses to the BTO-restricted optimum) and the distinct
/// ideal-choice chart rows (so exactly decomposable charts are solved to
/// zero error). Returns the achieved error and the decomposition.
///
/// # Panics
///
/// Panics if `costs.inputs != partition.n()`.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{InputDistribution, Partition, TruthTable};
/// use dalut_decomp::{bit_costs, opt_for_part, LsbFill, OptParams};
/// use rand::SeedableRng;
///
/// // XOR of all inputs decomposes exactly under any partition.
/// let f = TruthTable::from_fn(6, 1, |x| x.count_ones() % 2).unwrap();
/// let dist = InputDistribution::uniform(6).unwrap();
/// let costs = bit_costs(&f, &f, 0, &dist, LsbFill::FromApprox).unwrap();
/// let part = Partition::new(6, 0b000111).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let (err, d) = opt_for_part(&costs, part, OptParams::fast(), &mut rng);
/// assert_eq!(err, 0.0);
/// assert_eq!(d.to_truth_table(), f);
/// ```
pub fn opt_for_part(
    costs: &BitCosts,
    partition: Partition,
    params: OptParams,
    rng: &mut impl Rng,
) -> (f64, DisjointDecomp) {
    assert_eq!(
        costs.inputs,
        partition.n(),
        "cost table and partition width mismatch"
    );
    let chart = Cost2d::new(costs, partition);
    let mut best: Option<(f64, Vec<bool>, Vec<RowType>)> = None;

    let consider = |v: Vec<bool>, chart: &Cost2d, best: &mut Option<(f64, Vec<bool>, Vec<RowType>)>| {
        let (mut types, mut err) = chart.best_types(&v);
        let mut v = v;
        for _ in 0..params.max_iters {
            let v2 = chart.best_pattern(&types);
            let (types2, err2) = chart.best_types(&v2);
            if err2 + 1e-15 >= err {
                break;
            }
            v = v2;
            types = types2;
            err = err2;
        }
        if best.as_ref().is_none_or(|(e, _, _)| err < *e) {
            *best = Some((err, v, types));
        }
    };

    // Seed with the BTO optimum (guarantees normal-mode error <= BTO error)
    // and with distinct rows of the ideal-choice chart (guarantees exactly
    // decomposable charts are solved to zero error).
    let (bto_v, _) = chart.bto_optimum();
    consider(bto_v, &chart, &mut best);
    for seed in chart.ideal_row_seeds(params.restarts.max(8)) {
        consider(seed, &chart, &mut best);
    }
    for _ in 0..params.restarts {
        let v: Vec<bool> = (0..chart.cols).map(|_| rng.random()).collect();
        consider(v, &chart, &mut best);
    }

    let (err, v, types) = best.expect("at least one start is always considered");
    let decomp = DisjointDecomp::new(partition, v, types)
        .expect("dimensions match the partition by construction");
    (err, decomp)
}

/// BTO-restricted `OptForPart` (paper §IV-A): all rows are forced to type
/// 3, so the optimal pattern is closed-form per column. Deterministic.
///
/// # Panics
///
/// Panics if `costs.inputs != partition.n()`.
///
/// # Examples
///
/// ```
/// use dalut_boolfn::{InputDistribution, Partition, TruthTable};
/// use dalut_decomp::{bit_costs, opt_for_part_bto, LsbFill};
///
/// // A function depending only on the bound set is BTO-exact.
/// let f = TruthTable::from_fn(5, 1, |x| (x >> 1) & 1).unwrap();
/// let dist = InputDistribution::uniform(5).unwrap();
/// let costs = bit_costs(&f, &f, 0, &dist, LsbFill::FromApprox).unwrap();
/// let part = Partition::new(5, 0b00011).unwrap(); // B = {x0, x1}
/// let (err, bto) = opt_for_part_bto(&costs, part);
/// assert_eq!(err, 0.0);
/// assert_eq!(bto.pattern(), &[false, false, true, true]);
/// ```
pub fn opt_for_part_bto(costs: &BitCosts, partition: Partition) -> (f64, BtoDecomp) {
    assert_eq!(
        costs.inputs,
        partition.n(),
        "cost table and partition width mismatch"
    );
    let chart = Cost2d::new(costs, partition);
    let (v, err) = chart.bto_optimum();
    (
        err,
        BtoDecomp::new(partition, v).expect("dimensions match by construction"),
    )
}

/// Non-disjoint `OptForPart` (paper §IV-B1): tries every bound variable as
/// the shared bit `x_s`, solves the two conditional disjoint sub-problems
/// independently (their probability-weighted costs simply add, Eq. (2)),
/// and keeps the best. Returns `None` if the bound set has a single
/// variable (no reduced bound set would remain).
///
/// # Panics
///
/// Panics if `costs.inputs != partition.n()`.
pub fn opt_for_part_nd(
    costs: &BitCosts,
    partition: Partition,
    params: OptParams,
    rng: &mut impl Rng,
) -> Option<(f64, NonDisjointDecomp)> {
    assert_eq!(
        costs.inputs,
        partition.n(),
        "cost table and partition width mismatch"
    );
    if partition.bound_size() < 2 {
        return None;
    }
    let mut best: Option<(f64, NonDisjointDecomp)> = None;
    for &s in &partition.bound_vars() {
        let s = s as usize;
        let reduced_bound = reduce_mask(partition.bound_mask() & !(1u32 << s), s);
        let reduced = Partition::new(partition.n() - 1, reduced_bound)
            .expect("reduced bound set is a proper non-empty subset");
        let (costs0, costs1) = costs.split_on_bit(s);
        let (e0, d0) = opt_for_part(&costs0, reduced, params, rng);
        let (e1, d1) = opt_for_part(&costs1, reduced, params, rng);
        let err = e0 + e1;
        if best.as_ref().is_none_or(|(e, _)| err < *e) {
            let nd = NonDisjointDecomp::new(partition, s, d0, d1)
                .expect("halves built over the reduction of the partition");
            best = Some((err, nd));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{bit_costs, column_error, LsbFill};
    use dalut_boolfn::builder::{random_decomposable, random_table};
    use dalut_boolfn::{InputDistribution, TruthTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn costs_for(g: &TruthTable, bit: usize) -> BitCosts {
        let dist = InputDistribution::uniform(g.inputs()).unwrap();
        bit_costs(g, g, bit, &dist, LsbFill::FromApprox).unwrap()
    }

    #[test]
    fn reported_error_matches_materialised_column() {
        let mut rng = StdRng::seed_from_u64(42);
        for seed in 0..5u64 {
            let mut frng = StdRng::seed_from_u64(seed);
            let g = random_table(6, 4, &mut frng).unwrap();
            let costs = costs_for(&g, 2);
            let p = Partition::new(6, 0b000111).unwrap();
            let (err, d) = opt_for_part(&costs, p, OptParams::fast(), &mut rng);
            let col = d.to_bit_column();
            assert!(
                (column_error(&costs, &col) - err).abs() < 1e-12,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn exactly_decomposable_function_reaches_zero_error() {
        let mut frng = StdRng::seed_from_u64(9);
        let mut rng = StdRng::seed_from_u64(100);
        for _ in 0..10 {
            let bound = 0b011010u32;
            let f = random_decomposable(6, bound, &mut frng).unwrap();
            let costs = costs_for(&f, 0);
            let p = Partition::new(6, bound).unwrap();
            let (err, d) = opt_for_part(&costs, p, OptParams::default(), &mut rng);
            assert!(err < 1e-12, "exact decomposition not found, err={err}");
            // The decomposition must reproduce f exactly.
            assert_eq!(d.to_truth_table(), f);
        }
    }

    #[test]
    fn normal_never_worse_than_bto() {
        let mut frng = StdRng::seed_from_u64(77);
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..10 {
            let g = random_table(7, 5, &mut frng).unwrap();
            let costs = costs_for(&g, 3);
            let p = Partition::random(7, 3, &mut frng);
            let (e_norm, _) = opt_for_part(&costs, p, OptParams::fast(), &mut rng);
            let (e_bto, _) = opt_for_part_bto(&costs, p);
            assert!(
                e_norm <= e_bto + 1e-12,
                "normal {e_norm} worse than BTO {e_bto}"
            );
        }
    }

    #[test]
    fn error_never_below_ideal_bound() {
        let mut frng = StdRng::seed_from_u64(5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let g = random_table(6, 6, &mut frng).unwrap();
            let costs = costs_for(&g, 4);
            let p = Partition::random(6, 3, &mut frng);
            let ideal = costs.ideal_error();
            let (e, _) = opt_for_part(&costs, p, OptParams::fast(), &mut rng);
            assert!(e >= ideal - 1e-12);
            let (eb, _) = opt_for_part_bto(&costs, p);
            assert!(eb >= ideal - 1e-12);
        }
    }

    #[test]
    fn bto_error_matches_materialised_column() {
        let mut frng = StdRng::seed_from_u64(21);
        let g = random_table(6, 4, &mut frng).unwrap();
        let costs = costs_for(&g, 1);
        let p = Partition::new(6, 0b110100).unwrap();
        let (err, b) = opt_for_part_bto(&costs, p);
        assert!((column_error(&costs, &b.to_bit_column()) - err).abs() < 1e-12);
    }

    #[test]
    fn bto_is_optimal_among_bto_patterns() {
        // Exhaustively check on a tiny chart (b = 2 -> 16 patterns).
        let mut frng = StdRng::seed_from_u64(33);
        let g = random_table(4, 3, &mut frng).unwrap();
        let costs = costs_for(&g, 1);
        let p = Partition::new(4, 0b0011).unwrap();
        let (err, _) = opt_for_part_bto(&costs, p);
        for pat in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|c| (pat >> c) & 1 == 1).collect();
            let b = BtoDecomp::new(p, v).unwrap();
            assert!(column_error(&costs, &b.to_bit_column()) >= err - 1e-12);
        }
    }

    #[test]
    fn nd_never_worse_than_normal() {
        // ND can emulate normal (F0 = F1), and each half is solved with the
        // BTO-seeded alternating optimiser, so with the same (deterministic)
        // seeding ND should not lose on these small cases.
        let mut frng = StdRng::seed_from_u64(55);
        for trial in 0..8 {
            let g = random_table(6, 4, &mut frng).unwrap();
            let costs = costs_for(&g, 2);
            let p = Partition::random(6, 3, &mut frng);
            let mut rng1 = StdRng::seed_from_u64(1000 + trial);
            let mut rng2 = StdRng::seed_from_u64(1000 + trial);
            let (e_norm, _) = opt_for_part(&costs, p, OptParams::default(), &mut rng1);
            let (e_nd, _) =
                opt_for_part_nd(&costs, p, OptParams::default(), &mut rng2).unwrap();
            assert!(
                e_nd <= e_norm + 1e-9,
                "trial {trial}: nd {e_nd} vs normal {e_norm}"
            );
        }
    }

    #[test]
    fn nd_error_matches_materialised_column() {
        let mut frng = StdRng::seed_from_u64(60);
        let mut rng = StdRng::seed_from_u64(61);
        let g = random_table(7, 4, &mut frng).unwrap();
        let costs = costs_for(&g, 0);
        let p = Partition::new(7, 0b0011101).unwrap();
        let (err, nd) = opt_for_part_nd(&costs, p, OptParams::fast(), &mut rng).unwrap();
        assert!((column_error(&costs, &nd.to_bit_column()) - err).abs() < 1e-12);
    }

    #[test]
    fn nd_requires_two_bound_variables() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = TruthTable::from_fn(4, 2, |x| x % 4).unwrap();
        let costs = costs_for(&g, 0);
        let p = Partition::new(4, 0b0001).unwrap();
        assert!(opt_for_part_nd(&costs, p, OptParams::fast(), &mut rng).is_none());
    }

    #[test]
    fn opt_for_part_finds_global_optimum_on_small_charts() {
        // Brute-force all 2^cols patterns on b = 3 charts and compare.
        let mut frng = StdRng::seed_from_u64(88);
        let mut rng = StdRng::seed_from_u64(89);
        for _ in 0..5 {
            let g = random_table(5, 4, &mut frng).unwrap();
            let costs = costs_for(&g, 2);
            let p = Partition::new(5, 0b00111).unwrap();
            let chart_best = crate::exact::brute_force_optimal(&costs, p).0;
            let (err, _) = opt_for_part(&costs, p, OptParams::default(), &mut rng);
            assert!(
                (err - chart_best).abs() < 1e-12,
                "alternating {err} vs brute force {chart_best}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut frng = StdRng::seed_from_u64(13);
        let g = random_table(6, 4, &mut frng).unwrap();
        let costs = costs_for(&g, 1);
        let p = Partition::new(6, 0b011100).unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            opt_for_part(&costs, p, OptParams::default(), &mut rng)
        };
        let (e1, d1) = run(5);
        let (e2, d2) = run(5);
        assert_eq!(e1, e2);
        assert_eq!(d1, d2);
    }
}
