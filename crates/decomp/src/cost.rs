//! Per-input 0/1-choice cost arrays for optimising one output bit.
//!
//! When the search optimises the approximate component function `ĝ_k`, each
//! input `X` contributes to the MED a cost that depends only on whether the
//! chosen bit `ŷ_k(X)` is 0 or 1 (all other bits being fixed by the current
//! context or by an LSB-fill model). Those two costs, `c0[X]` and `c1[X]`,
//! are **independent of the variable partition** — the partition only
//! decides how they are laid out in the 2-D chart. Computing them once per
//! `FindBestSettings` call and re-indexing per candidate partition is the
//! central performance lever of this implementation (DESIGN.md §6.1).

use dalut_boolfn::{BoolFnError, InputDistribution, TruthTable};
use serde::{Deserialize, Serialize};

/// How the output bits *below* the bit being optimised are filled in when
/// computing the error distance for an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LsbFill {
    /// Use the bits of the current approximation `Ĝ` (valid from round 2
    /// on, when every bit has a setting).
    FromApprox,
    /// Use the accurate bits of `G` (DALTA's round-1 model, paper §II-B).
    Accurate,
    /// The paper's predictive model (§III-B): assume the not-yet-optimised
    /// LSBs will be chosen to minimise the error — all 0s if the known MSBs
    /// already overshoot, all 1s if they undershoot, the accurate bits on a
    /// tie.
    Predictive,
}

/// The pair of per-input cost arrays for one output bit.
///
/// `c0[x]` (`c1[x]`) is the contribution of input `x` to the MED if the
/// optimised bit evaluates to 0 (1) there. Costs are already weighted by
/// the input probability, so a plain sum over any subset of inputs is the
/// subset's MED contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BitCosts {
    /// Number of input bits `n`.
    pub inputs: usize,
    /// Cost of choosing `ŷ_k = 0`, per flat input.
    pub c0: Vec<f64>,
    /// Cost of choosing `ŷ_k = 1`, per flat input.
    pub c1: Vec<f64>,
}

impl BitCosts {
    /// Lower bound on the achievable MED for this bit: every input takes
    /// its cheaper choice.
    pub fn ideal_error(&self) -> f64 {
        self.c0.iter().zip(&self.c1).map(|(&a, &b)| a.min(b)).sum()
    }

    /// Splits the cost arrays by the value of input bit `s`, compressing
    /// the index space to `n - 1` bits ([`crate::reduce_index`]). Used by
    /// the non-disjoint decomposition: because costs are already
    /// probability-weighted, minimising each half independently minimises
    /// the total (paper Eq. (2)).
    ///
    /// # Panics
    ///
    /// Panics if `s >= n` or `n == 1`.
    pub fn split_on_bit(&self, s: usize) -> (BitCosts, BitCosts) {
        assert!(s < self.inputs, "bit out of range");
        assert!(self.inputs > 1, "cannot split a 1-input cost table");
        let half_len = self.c0.len() / 2;
        let mut out = [
            BitCosts {
                inputs: self.inputs - 1,
                c0: vec![0.0; half_len],
                c1: vec![0.0; half_len],
            },
            BitCosts {
                inputs: self.inputs - 1,
                c0: vec![0.0; half_len],
                c1: vec![0.0; half_len],
            },
        ];
        for x in 0..self.c0.len() {
            let j = (x >> s) & 1;
            let rx = crate::setting::reduce_index(x as u32, s) as usize;
            out[j].c0[rx] = self.c0[x];
            out[j].c1[rx] = self.c1[x];
        }
        let [a, b] = out;
        (a, b)
    }
}

/// Builds the per-input cost arrays for output bit `bit` of `g`, with the
/// other bits taken from `g_hat` (MSBs and, under [`LsbFill::FromApprox`],
/// LSBs) or filled per `fill`.
///
/// # Errors
///
/// Returns an error if shapes disagree.
///
/// # Panics
///
/// Panics if `bit >= m`.
pub fn bit_costs(
    g: &TruthTable,
    g_hat: &TruthTable,
    bit: usize,
    dist: &InputDistribution,
    fill: LsbFill,
) -> Result<BitCosts, BoolFnError> {
    g.check_same_shape(g_hat)?;
    if dist.inputs() != g.inputs() {
        return Err(BoolFnError::DimensionMismatch(format!(
            "distribution over {} bits, function over {}",
            dist.inputs(),
            g.inputs()
        )));
    }
    assert!(bit < g.outputs(), "output bit out of range");

    let size = g.len();
    let mut c0 = Vec::with_capacity(size);
    let mut c1 = Vec::with_capacity(size);
    let low_mask = (1u32 << bit) - 1;
    let high_mask = !(low_mask | (1u32 << bit));

    for x in 0..size as u32 {
        let p = dist.prob(x);
        let y = g.eval(x);
        let approx = g_hat.eval(x);
        let hi = approx & high_mask;
        for (choice, slot) in [(0u32, &mut c0), (1u32, &mut c1)] {
            let y_hat_m = hi | (choice << bit);
            let y_hat = match fill {
                LsbFill::FromApprox => y_hat_m | (approx & low_mask),
                LsbFill::Accurate => y_hat_m | (y & low_mask),
                LsbFill::Predictive => {
                    let y_m = y & !low_mask;
                    match y_hat_m.cmp(&y_m) {
                        std::cmp::Ordering::Greater => y_hat_m,
                        std::cmp::Ordering::Less => y_hat_m | low_mask,
                        std::cmp::Ordering::Equal => y,
                    }
                }
            };
            slot.push(p * f64::from(y.abs_diff(y_hat)));
        }
    }
    Ok(BitCosts {
        inputs: g.inputs(),
        c0,
        c1,
    })
}

/// Evaluates the MED of a concrete bit column under the cost arrays: the
/// sum over inputs of `c1` where the column is 1 and `c0` where it is 0.
pub fn column_error(costs: &BitCosts, column: &[bool]) -> f64 {
    assert_eq!(costs.c0.len(), column.len(), "column length mismatch");
    column
        .iter()
        .enumerate()
        .map(|(x, &b)| if b { costs.c1[x] } else { costs.c0[x] })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::metrics;

    fn dist(n: usize) -> InputDistribution {
        InputDistribution::uniform(n).unwrap()
    }

    #[test]
    fn from_approx_costs_match_direct_med() {
        // Splicing a candidate bit column into g_hat and measuring MED must
        // equal column_error under FromApprox costs.
        let g = TruthTable::from_fn(4, 4, |x| (x * 3) % 16).unwrap();
        let g_hat = TruthTable::from_fn(4, 4, |x| (x * 3 + 1) % 16).unwrap();
        let d = dist(4);
        for bit in 0..4 {
            let costs = bit_costs(&g, &g_hat, bit, &d, LsbFill::FromApprox).unwrap();
            let column: Vec<bool> = (0..16u32).map(|x| x % 3 == 0).collect();
            let spliced = g_hat.with_bit_replaced(bit, |x| column[x as usize]);
            let med = metrics::med(&g, &spliced, &d).unwrap();
            assert!(
                (column_error(&costs, &column) - med).abs() < 1e-12,
                "bit {bit}"
            );
        }
    }

    #[test]
    fn accurate_fill_uses_target_lsbs() {
        let g = TruthTable::from_fn(3, 3, |x| x).unwrap();
        // g_hat LSBs deliberately garbage; Accurate fill must ignore them.
        let g_hat = TruthTable::from_fn(3, 3, |x| x ^ 0b011).unwrap();
        let d = dist(3);
        let costs = bit_costs(&g, &g_hat, 2, &d, LsbFill::Accurate).unwrap();
        // Choosing the accurate MSB everywhere gives zero error.
        let column: Vec<bool> = (0..8u32).map(|x| x >> 2 & 1 == 1).collect();
        assert!(column_error(&costs, &column) < 1e-12);
    }

    #[test]
    fn predictive_zero_when_msbs_match() {
        // If the known MSBs equal the target MSBs, the model predicts the
        // LSBs will absorb the rest: cost 0 for the accurate choice.
        let g = TruthTable::from_fn(3, 3, |x| x).unwrap();
        let g_hat = g.clone();
        let d = dist(3);
        let costs = bit_costs(&g, &g_hat, 1, &d, LsbFill::Predictive).unwrap();
        for x in 0..8u32 {
            let acc = (x >> 1) & 1;
            let c = if acc == 1 {
                costs.c1[x as usize]
            } else {
                costs.c0[x as usize]
            };
            assert!(c < 1e-12, "x={x}");
        }
    }

    #[test]
    fn predictive_overshoot_assumes_zero_lsbs() {
        // m=3, optimise bit 1 (middle). Target y = 0b001 (Y_M for bits>=1 is 0).
        // Choosing bit1=1 overshoots: Ŷ_M = 0b010 > 0b000, so LSB predicted 0,
        // ŷ = 2, err = |1-2| = 1.
        let g = TruthTable::from_fn(1, 3, |_| 0b001).unwrap();
        let g_hat = TruthTable::from_fn(1, 3, |_| 0b000).unwrap();
        let d = dist(1);
        let costs = bit_costs(&g, &g_hat, 1, &d, LsbFill::Predictive).unwrap();
        assert!((costs.c1[0] - 0.5).abs() < 1e-12); // p = 1/2 each input
                                                    // Choosing 0 ties (Ŷ_M == Y_M) -> LSBs predicted accurate -> 0.
        assert!(costs.c0[0] < 1e-12);
    }

    #[test]
    fn predictive_undershoot_assumes_one_lsbs() {
        // Target y = 0b110. Optimise bit 2 (MSB), g_hat MSB currently 0.
        // Choice 0: Ŷ_M = 0 < Y_M = 4 -> LSBs all 1 -> ŷ = 0b011, err = 3.
        let g = TruthTable::from_fn(1, 3, |_| 0b110).unwrap();
        let g_hat = TruthTable::from_fn(1, 3, |_| 0b000).unwrap();
        let d = dist(1);
        let costs = bit_costs(&g, &g_hat, 2, &d, LsbFill::Predictive).unwrap();
        assert!((costs.c0[0] - 1.5).abs() < 1e-12);
        // Choice 1: Ŷ_M = 4 == Y_M -> LSBs predicted accurate -> err 0.
        assert!(costs.c1[0] < 1e-12);
    }

    #[test]
    fn ideal_error_lower_bounds_any_column() {
        let g = TruthTable::from_fn(4, 4, |x| (x + 5) % 16).unwrap();
        let g_hat = TruthTable::from_fn(4, 4, |x| x).unwrap();
        let d = dist(4);
        let costs = bit_costs(&g, &g_hat, 2, &d, LsbFill::FromApprox).unwrap();
        let ideal = costs.ideal_error();
        for pattern in [0u32, 0xFFFF, 0xAAAA, 0x1234] {
            let column: Vec<bool> = (0..16).map(|x| (pattern >> x) & 1 == 1).collect();
            assert!(column_error(&costs, &column) >= ideal - 1e-12);
        }
    }

    #[test]
    fn split_on_bit_partitions_costs() {
        let g = TruthTable::from_fn(4, 4, |x| (7 * x + 2) % 16).unwrap();
        let g_hat = TruthTable::from_fn(4, 4, |x| x).unwrap();
        let d = dist(4);
        let costs = bit_costs(&g, &g_hat, 1, &d, LsbFill::FromApprox).unwrap();
        for s in 0..4usize {
            let (lo, hi) = costs.split_on_bit(s);
            assert_eq!(lo.inputs, 3);
            // Total mass is preserved.
            let total: f64 = costs.c0.iter().sum::<f64>() + costs.c1.iter().sum::<f64>();
            let split_total: f64 = lo.c0.iter().sum::<f64>()
                + lo.c1.iter().sum::<f64>()
                + hi.c0.iter().sum::<f64>()
                + hi.c1.iter().sum::<f64>();
            assert!((total - split_total).abs() < 1e-12);
            // Spot-check the index mapping.
            for x in 0..16u32 {
                let rx = crate::setting::reduce_index(x, s) as usize;
                let side = if (x >> s) & 1 == 1 { &hi } else { &lo };
                assert_eq!(side.c0[rx], costs.c0[x as usize]);
                assert_eq!(side.c1[rx], costs.c1[x as usize]);
            }
        }
    }

    #[test]
    fn bit_costs_validates_shapes() {
        let g = TruthTable::from_fn(3, 3, |x| x).unwrap();
        let h = TruthTable::from_fn(3, 4, |x| x).unwrap();
        assert!(bit_costs(&g, &h, 0, &dist(3), LsbFill::Accurate).is_err());
        assert!(bit_costs(&g, &g, 0, &dist(4), LsbFill::Accurate).is_err());
    }

    #[test]
    fn nonuniform_distribution_weights_costs() {
        let g = TruthTable::from_fn(2, 2, |_| 0b10).unwrap();
        let g_hat = TruthTable::from_fn(2, 2, |_| 0b00).unwrap();
        let d = InputDistribution::from_weights(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let costs = bit_costs(&g, &g_hat, 1, &d, LsbFill::FromApprox).unwrap();
        // Only x=0 carries mass: choosing 0 errs by 2, choosing 1 errs 0.
        assert!((costs.c0[0] - 2.0).abs() < 1e-12);
        assert!(costs.c1[0] < 1e-12);
        assert_eq!(costs.c0[1], 0.0);
    }
}
