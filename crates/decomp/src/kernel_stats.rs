//! Lock-free per-thread counters for the `OptForPart` kernel family.
//!
//! Every kernel entry point ([`opt_for_part`](crate::opt_for_part()),
//! [`opt_for_part_bto`](crate::opt_for_part_bto()) and, through its
//! sub-calls, [`opt_for_part_nd`](crate::opt_for_part_nd())) bumps a set
//! of thread-local relaxed atomics on each invocation: call count, random
//! restarts executed, and alternating-minimisation iterations performed.
//! The increments are a handful of `Relaxed` `fetch_add`s on memory owned
//! by the calling thread — nanoseconds against kernel calls that take
//! tens of microseconds — so the counters stay on even in uninstrumented
//! builds.
//!
//! Two read paths serve two different consumers:
//!
//! * [`current()`] reads **only the calling thread's** cell. Search code
//!   brackets a kernel call with two `current()` reads to attribute the
//!   delta to that specific call; because the cell is thread-local, the
//!   delta cannot be polluted by concurrent work on other threads (e.g.
//!   parallel tests in one process).
//! * [`global()`] sums every live thread cell plus the retired totals of
//!   threads that have exited (each cell flushes itself into a static
//!   accumulator on TLS drop). Metrics sinks use it for process-wide
//!   absolute totals.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use serde::{Deserialize, Serialize};

/// A snapshot of the kernel counters.
///
/// Obtained from [`current()`] or [`global()`]; two snapshots subtract
/// with [`KernelStats::delta_since`] to attribute work to an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel invocations (`opt_for_part` + `opt_for_part_bto`; the
    /// non-disjoint variant counts through its disjoint sub-calls).
    pub calls: u64,
    /// Random restarts executed (the `Z` loop; BTO and ideal-row seeds
    /// are not counted as restarts).
    pub restarts: u64,
    /// Alternating-minimisation iterations across all starts.
    pub alternations: u64,
}

impl KernelStats {
    /// Component-wise saturating difference `self - earlier`.
    #[must_use]
    pub fn delta_since(self, earlier: KernelStats) -> KernelStats {
        KernelStats {
            calls: self.calls.saturating_sub(earlier.calls),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            alternations: self.alternations.saturating_sub(earlier.alternations),
        }
    }
}

/// One thread's counter cell. Only the owning thread writes; `global()`
/// readers race benignly via `Relaxed` loads.
#[derive(Debug, Default)]
struct Cell {
    calls: AtomicU64,
    restarts: AtomicU64,
    alternations: AtomicU64,
}

impl Cell {
    fn load(&self) -> KernelStats {
        KernelStats {
            calls: self.calls.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            alternations: self.alternations.load(Ordering::Relaxed),
        }
    }
}

/// Registry of live thread cells; pruned of dead entries on every
/// registration and on `global()` reads. Worker threads are short-lived
/// scoped threads, so the lock is only taken on thread birth/death and
/// on snapshot reads — never on the kernel hot path.
static REGISTRY: Mutex<Vec<Weak<Cell>>> = Mutex::new(Vec::new());

/// Totals flushed from cells whose threads have exited.
static RETIRED_CALLS: AtomicU64 = AtomicU64::new(0);
static RETIRED_RESTARTS: AtomicU64 = AtomicU64::new(0);
static RETIRED_ALTERNATIONS: AtomicU64 = AtomicU64::new(0);

/// TLS guard: registers the cell on first use, flushes it into the
/// retired totals when the thread exits.
struct Local {
    cell: Arc<Cell>,
}

impl Drop for Local {
    fn drop(&mut self) {
        let s = self.cell.load();
        RETIRED_CALLS.fetch_add(s.calls, Ordering::Relaxed);
        RETIRED_RESTARTS.fetch_add(s.restarts, Ordering::Relaxed);
        RETIRED_ALTERNATIONS.fetch_add(s.alternations, Ordering::Relaxed);
        if let Ok(mut reg) = REGISTRY.lock() {
            reg.retain(|w| {
                w.upgrade()
                    .is_some_and(|live| !Arc::ptr_eq(&live, &self.cell))
            });
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_cell<R>(f: impl FnOnce(&Cell) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let local = slot.get_or_insert_with(|| {
            let cell = Arc::new(Cell::default());
            if let Ok(mut reg) = REGISTRY.lock() {
                reg.retain(|w| w.strong_count() > 0);
                reg.push(Arc::downgrade(&cell));
            }
            Local { cell }
        });
        f(&local.cell)
    })
}

/// Records one kernel invocation on the calling thread's cell.
pub(crate) fn record(restarts: u64, alternations: u64) {
    with_cell(|cell| {
        cell.calls.fetch_add(1, Ordering::Relaxed);
        cell.restarts.fetch_add(restarts, Ordering::Relaxed);
        cell.alternations.fetch_add(alternations, Ordering::Relaxed);
    });
}

/// Counters accumulated by the **calling thread** since it first touched
/// the kernel. Bracket a kernel call with two reads and subtract to get
/// exactly that call's work, immune to concurrent threads.
#[must_use]
pub fn current() -> KernelStats {
    with_cell(Cell::load)
}

/// Process-wide totals: every live thread's cell plus the retired totals
/// of threads that have exited.
#[must_use]
pub fn global() -> KernelStats {
    let mut total = KernelStats {
        calls: RETIRED_CALLS.load(Ordering::Relaxed),
        restarts: RETIRED_RESTARTS.load(Ordering::Relaxed),
        alternations: RETIRED_ALTERNATIONS.load(Ordering::Relaxed),
    };
    if let Ok(mut reg) = REGISTRY.lock() {
        reg.retain(|w| w.strong_count() > 0);
        for weak in reg.iter() {
            if let Some(cell) = weak.upgrade() {
                let s = cell.load();
                total.calls += s.calls;
                total.restarts += s.restarts;
                total.alternations += s.alternations;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_advances_current_and_global() {
        let before_cur = current();
        let before_glob = global();
        record(3, 17);
        let d_cur = current().delta_since(before_cur);
        assert_eq!(
            d_cur,
            KernelStats {
                calls: 1,
                restarts: 3,
                alternations: 17
            }
        );
        let d_glob = global().delta_since(before_glob);
        // Other test threads may add on top, never subtract.
        assert!(d_glob.calls >= 1 && d_glob.restarts >= 3 && d_glob.alternations >= 17);
    }

    #[test]
    fn retired_threads_flush_into_global() {
        let before = global();
        std::thread::spawn(|| record(2, 5))
            .join()
            .expect("worker thread");
        let delta = global().delta_since(before);
        assert!(delta.calls >= 1 && delta.restarts >= 2 && delta.alternations >= 5);
    }

    #[test]
    fn current_is_thread_isolated() {
        let before = current();
        std::thread::spawn(|| record(9, 9))
            .join()
            .expect("worker thread");
        assert_eq!(current(), before);
    }

    #[test]
    fn delta_since_saturates() {
        let a = KernelStats {
            calls: 1,
            restarts: 1,
            alternations: 1,
        };
        let b = KernelStats {
            calls: 2,
            restarts: 2,
            alternations: 2,
        };
        assert_eq!(a.delta_since(b), KernelStats::default());
    }
}
