//! Accuracy contract of the closed-form resource estimator.
//!
//! Three layers of guarantees, in decreasing strength:
//!
//! 1. **Exactness** — area, delay, clock and leakage are *derived*, not
//!    fitted: they must match exact netlist sign-off to numerical
//!    precision at every geometry.
//! 2. **Calibration bounds** — the fitted switching model must keep the
//!    total-energy error small and rank candidates faithfully on its
//!    design-of-experiments sweep.
//! 3. **Monotonicity** — per-bit mode upgrades (BTO → Normal → ND)
//!    activate strictly more table bits on the same fabric, so the
//!    estimate must never get cheaper (property-tested over seeds).
//!
//! Determinism tests back the harness: fixed seeds give bitwise-stable
//! estimates and coefficients, so `--estimator prune` reruns reproduce
//! the same pruning decisions and `--estimator off` stays bit-identical
//! run over run.

use dalut_boolfn::InputDistribution;
use dalut_core::{select_survivors, ApproxLutConfig};
use dalut_est::doe::synthetic_config;
use dalut_est::{calibrate, CalibrationOptions, ConfigFeatures, ResourceEstimator};
use dalut_hw::{build_approx_lut, characterize, ArchStyle};
use dalut_netlist::{area_um2, critical_path_ns, CellLibrary};
use proptest::prelude::*;

fn styles_with_modes() -> [(ArchStyle, Vec<&'static str>); 3] {
    [
        (ArchStyle::Dalta, vec!["normal"]),
        (ArchStyle::BtoNormal, vec!["bto", "normal"]),
        (ArchStyle::BtoNormalNd, vec!["bto", "normal", "nd"]),
    ]
}

#[test]
fn area_and_delay_are_exact_across_geometries() {
    let lib = CellLibrary::nangate45();
    for (style, modes) in styles_with_modes() {
        for (n, m, b) in [(6usize, 3usize, 2usize), (7, 4, 3), (8, 4, 5)] {
            for seed in [1u64, 2, 3] {
                let config = synthetic_config(n, m, b, &modes, seed);
                let dist = InputDistribution::uniform(n).unwrap();
                let feats = ConfigFeatures::extract(&config, style, &dist, &lib).unwrap();
                let inst = build_approx_lut(&config, style).unwrap();
                let area = area_um2(inst.netlist(), &lib);
                let delay = critical_path_ns(inst.netlist(), &lib).unwrap();
                assert!(
                    (feats.area_um2 - area).abs() < 1e-6,
                    "{style:?} n={n} b={b} seed={seed}: area {} vs {area}",
                    feats.area_um2
                );
                assert!(
                    (feats.critical_path_ns - delay).abs() < 1e-9,
                    "{style:?} n={n} b={b} seed={seed}: delay {} vs {delay}",
                    feats.critical_path_ns
                );
            }
        }
    }
}

#[test]
fn calibration_error_bounds_hold_per_family() {
    let opts = CalibrationOptions::for_width(8, 4);
    let dist = InputDistribution::uniform(opts.inputs).unwrap();
    let lib = CellLibrary::nangate45();
    for (style, _) in styles_with_modes() {
        let (_, report) = calibrate(style, &dist, &lib, &opts).unwrap();
        // Derived quantities: exact to numerical precision.
        assert!(report.area_max_abs_err_um2 < 1e-6, "{report:?}");
        assert!(report.delay_max_abs_err_ns < 1e-9, "{report:?}");
        assert!(report.clock_max_rel_err < 1e-9, "{report:?}");
        assert!(report.leakage_max_rel_err < 1e-9, "{report:?}");
        // Fitted switching: the total energy stays close and, more
        // importantly for pruning, ranks the DoE faithfully — except
        // when the family's DoE energies cluster so tightly (DALTA has
        // no mode mix) that rank flips among near-ties are harmless.
        assert!(report.energy_mean_rel_err < 0.10, "{report:?}");
        assert!(
            report.rank_correlation > 0.8 || report.energy_max_rel_err < 0.05,
            "{report:?}"
        );
    }
}

#[test]
fn calibration_and_estimates_are_deterministic() {
    let opts = CalibrationOptions::fast();
    let dist = InputDistribution::uniform(opts.inputs).unwrap();
    let lib = CellLibrary::nangate45();
    let (m1, r1) = calibrate(ArchStyle::BtoNormal, &dist, &lib, &opts).unwrap();
    let (m2, r2) = calibrate(ArchStyle::BtoNormal, &dist, &lib, &opts).unwrap();
    assert_eq!(m1, m2, "same options must fit bitwise-identical models");
    assert_eq!(r1, r2);

    let est = ResourceEstimator::new(ArchStyle::BtoNormal, dist).with_model(m1);
    let config = synthetic_config(6, 3, 3, &["bto", "normal"], 17);
    let e1 = est.estimate(&config).unwrap();
    let e2 = est.estimate(&config).unwrap();
    assert_eq!(e1, e2, "estimates must be bitwise-stable");
}

/// The calibrated pruning flow must not lose meaningful energy: over a
/// candidate pool, the best exact-signed survivor is within 1 % of the
/// global exact optimum (the same bound CI enforces on
/// `BENCH_estimator.json`).
#[test]
fn pruned_best_stays_within_one_percent_of_exact_best() {
    let n = 6usize;
    let dist = InputDistribution::uniform(n).unwrap();
    let lib = CellLibrary::nangate45();
    let mut opts = CalibrationOptions::fast();
    opts.samples = 8;
    opts.reads = 64;
    let (model, _) = calibrate(ArchStyle::BtoNormalNd, &dist, &lib, &opts).unwrap();
    let est = ResourceEstimator::new(ArchStyle::BtoNormalNd, dist.clone()).with_model(model);

    let candidates: Vec<ApproxLutConfig> = (0..10)
        .map(|i| synthetic_config(n, 3, 3, &["bto", "normal", "nd"], 100 + i))
        .collect();
    let refs: Vec<&ApproxLutConfig> = candidates.iter().collect();
    let reads: Vec<u32> = (0..128u32).map(|i| (i * 13) % (1 << n)).collect();
    let clock = refs
        .iter()
        .map(|c| est.estimate(c).unwrap().critical_path_ns)
        .fold(0.0f64, f64::max)
        * 1.05;
    let exact = |c: &ApproxLutConfig| {
        let inst = build_approx_lut(c, ArchStyle::BtoNormalNd).unwrap();
        characterize(&inst, &reads, &lib, clock)
            .unwrap()
            .energy_per_read_fj
    };
    let best_exact = refs.iter().map(|c| exact(c)).fold(f64::INFINITY, f64::min);
    let est_clocked = est.with_clock(clock);
    let survivors = select_survivors(&est_clocked, &refs, 4);
    let best_pruned = survivors
        .iter()
        .map(|&i| exact(refs[i]))
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_pruned <= best_exact * 1.01,
        "pruned best {best_pruned} vs exact best {best_exact}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Upgrading a bit's mode (BTO → Normal → ND) on the reconfigurable
    /// BTO-Normal-ND fabric changes *which* table bits are active, not
    /// the fabric itself: area and delay are unchanged bitwise, while
    /// the estimated energy is strictly monotone in the active table
    /// bits (0, 2^(f+1), 2^(f+2) extra clocked DFFs per bit).
    #[test]
    fn mode_upgrades_keep_fabric_and_raise_energy(seed: u64) {
        let (n, m, b) = (7usize, 3usize, 3usize);
        let dist = InputDistribution::uniform(n).unwrap();
        let est = ResourceEstimator::new(ArchStyle::BtoNormalNd, dist);
        let bto = est.estimate(&synthetic_config(n, m, b, &["bto"], seed)).unwrap();
        let normal = est.estimate(&synthetic_config(n, m, b, &["normal"], seed)).unwrap();
        let nd = est.estimate(&synthetic_config(n, m, b, &["nd"], seed)).unwrap();
        prop_assert_eq!(bto.area_um2, normal.area_um2);
        prop_assert_eq!(normal.area_um2, nd.area_um2);
        prop_assert_eq!(bto.critical_path_ns, normal.critical_path_ns);
        prop_assert_eq!(normal.critical_path_ns, nd.critical_path_ns);
        prop_assert!(bto.clock_fj < normal.clock_fj);
        prop_assert!(normal.clock_fj < nd.clock_fj);
        prop_assert!(bto.energy_per_read_fj < normal.energy_per_read_fj);
        prop_assert!(normal.energy_per_read_fj < nd.energy_per_read_fj);
    }

    /// Estimated energy is never negative and always finite for
    /// arbitrary synthetic configurations and the prior model.
    #[test]
    fn estimates_are_finite_and_nonnegative(seed: u64, b in 2usize..=4) {
        let n = 6usize;
        let dist = InputDistribution::uniform(n).unwrap();
        let est = ResourceEstimator::new(ArchStyle::BtoNormalNd, dist);
        let config = synthetic_config(n, 2, b, &["bto", "normal", "nd"], seed);
        let e = est.estimate(&config).unwrap();
        prop_assert!(e.energy_per_read_fj.is_finite());
        prop_assert!(e.energy_per_read_fj >= 0.0);
        prop_assert!(e.switching_fj >= 0.0);
    }
}
