//! Coefficient calibration against exact netlist sign-off.
//!
//! [`calibrate`] runs a seeded design-of-experiments sweep per
//! architecture family — synthetic configurations spanning the mode
//! mixes and bound-set sizes the searches produce — builds each one
//! exactly, measures its [`PowerReport`](dalut_netlist::PowerReport)
//! over reads drawn from the input distribution, and least-squares fits
//! the [`SwitchingModel`] on the residual the closed-form features
//! cannot pin down (DFF-tree mux switching). The same pass
//! cross-checks that the analytic area / delay / clock / leakage agree
//! with sign-off to numerical precision, and reports how well the
//! fitted total energy ranks candidates.

use dalut_boolfn::InputDistribution;
use dalut_hw::{build_approx_lut, characterize, ArchStyle};
use dalut_netlist::CellLibrary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::doe::synthetic_config;
use crate::features::ConfigFeatures;
use crate::model::{CoeffSet, CoeffStore, EstError, ResourceEstimator, SwitchingModel};

/// Geometry and budget of one calibration sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalibrationOptions {
    /// Input bits `n` of the DoE configurations.
    pub inputs: usize,
    /// Output bits `m`.
    pub outputs: usize,
    /// Centre bound-set size; the DoE cycles `b − 1 ..= b + 1` (clamped).
    pub bound: usize,
    /// DoE configurations to sign off per family.
    pub samples: usize,
    /// Reads measured per configuration.
    pub reads: usize,
    /// Seed for partitions, table contents and read traces.
    pub seed: u64,
}

impl CalibrationOptions {
    /// A test-sized sweep (`n = 6`): seconds, not minutes.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            inputs: 6,
            outputs: 3,
            bound: 3,
            samples: 10,
            reads: 128,
            seed: 7,
        }
    }

    /// Options matched to a sweep's geometry: the DoE runs at the
    /// sweep's input width and bound size (a few output bits are enough
    /// — each configuration is one fit observation either way).
    #[must_use]
    pub fn for_width(n: usize, b: usize) -> Self {
        Self {
            inputs: n,
            outputs: 4.min(n),
            bound: b.clamp(2, n.saturating_sub(1).max(2)),
            samples: 12,
            reads: 256,
            seed: 7,
        }
    }

    /// The paper's Fig. 5/6 geometry (`n = 16, b = 9`).
    #[must_use]
    pub fn paper_point() -> Self {
        Self {
            inputs: 16,
            outputs: 16,
            bound: 9,
            samples: 12,
            reads: 256,
            seed: 7,
        }
    }
}

/// Fit quality and exactness cross-checks of one family's calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Architecture family calibrated.
    pub family: String,
    /// DoE configurations signed off.
    pub samples: usize,
    /// The fitted model.
    pub model: SwitchingModel,
    /// Mean absolute switching residual, fJ/read.
    pub switching_mean_abs_err_fj: f64,
    /// Worst relative switching residual.
    pub switching_max_rel_err: f64,
    /// Mean relative total-energy error.
    pub energy_mean_rel_err: f64,
    /// Worst relative total-energy error.
    pub energy_max_rel_err: f64,
    /// Spearman rank correlation of estimated vs exact total energy
    /// across the DoE (pruning fidelity).
    pub rank_correlation: f64,
    /// Worst absolute area deviation from sign-off, µm² (exactness
    /// check; ~0).
    pub area_max_abs_err_um2: f64,
    /// Worst absolute critical-path deviation, ns (~0).
    pub delay_max_abs_err_ns: f64,
    /// Worst relative clock-energy deviation (~0).
    pub clock_max_rel_err: f64,
    /// Worst relative leakage-energy deviation (~0).
    pub leakage_max_rel_err: f64,
}

/// Draws `count` reads i.i.d. from `dist` by inverse-CDF sampling.
#[must_use]
pub fn sample_reads(dist: &InputDistribution, count: usize, rng: &mut StdRng) -> Vec<u32> {
    let n = dist.inputs();
    let mut cdf = Vec::with_capacity(1 << n);
    let mut acc = 0.0f64;
    for x in 0..1u32 << n {
        acc += dist.prob(x);
        cdf.push(acc);
    }
    (0..count)
        .map(|_| {
            let u: f64 = rng.random::<f64>() * acc;
            cdf.partition_point(|&c| c < u).min((1 << n) - 1) as u32
        })
        .collect()
}

/// The per-family DoE mode mixes (cycled per sample).
fn mode_mixes(style: ArchStyle) -> &'static [&'static [&'static str]] {
    match style {
        ArchStyle::Dalta => &[&["normal"]],
        ArchStyle::BtoNormal => &[
            &["normal"],
            &["bto"],
            &["bto", "normal"],
            &["normal", "normal", "bto"],
        ],
        ArchStyle::BtoNormalNd => &[
            &["normal"],
            &["nd"],
            &["bto", "normal", "nd"],
            &["normal", "nd"],
            &["bto", "nd"],
        ],
    }
}

/// Calibrates one family: DoE sweep, exact sign-off, coefficient fit,
/// exactness cross-checks.
///
/// # Errors
///
/// Returns an error if a DoE configuration fails to build or simulate.
pub fn calibrate(
    style: ArchStyle,
    dist: &InputDistribution,
    lib: &CellLibrary,
    opts: &CalibrationOptions,
) -> Result<(SwitchingModel, CalibrationReport), EstError> {
    let (n, m) = (opts.inputs, opts.outputs);
    let mixes = mode_mixes(style);
    let mut rows: Vec<[f64; 4]> = Vec::with_capacity(opts.samples);
    let mut switching: Vec<f64> = Vec::with_capacity(opts.samples);
    let mut feats_all: Vec<ConfigFeatures> = Vec::with_capacity(opts.samples);
    let mut exact_energy: Vec<f64> = Vec::with_capacity(opts.samples);
    let mut clocks: Vec<f64> = Vec::with_capacity(opts.samples);

    let mut area_err = 0.0f64;
    let mut delay_err = 0.0f64;
    let mut clock_err = 0.0f64;
    let mut leak_err = 0.0f64;

    for i in 0..opts.samples {
        // ND folds one bound variable, so keep b ≥ 2; always leave a
        // non-empty free set.
        let b = (opts.bound + i % 3).saturating_sub(1).clamp(2, n - 1);
        let modes = mixes[i % mixes.len()];
        let seed = opts.seed.wrapping_mul(1000).wrapping_add(i as u64);
        let config = synthetic_config(n, m, b, modes, seed);

        let feats = ConfigFeatures::extract(&config, style, dist, lib)?;
        let clock = feats.critical_path_ns * 1.05;
        let inst = build_approx_lut(&config, style)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE571);
        let reads = sample_reads(dist, opts.reads, &mut rng);
        let rep = characterize(&inst, &reads, lib, clock)?;

        let cycles = rep.power.cycles as f64;
        area_err = area_err.max((feats.area_um2 - rep.area_um2).abs());
        delay_err = delay_err.max((feats.critical_path_ns - rep.critical_path_ns).abs());
        let exact_clock = rep.power.clock_energy_fj / cycles;
        clock_err = clock_err.max(rel_err(feats.clock_fj_per_read, exact_clock));
        let exact_leak = rep.power.leakage_energy_fj / cycles;
        leak_err = leak_err.max(rel_err(feats.leakage_fj_per_read(clock), exact_leak));

        rows.push([
            1.0,
            feats.exact_switching_fj,
            feats.bound_tree_activity,
            feats.free_tree_activity,
        ]);
        switching.push(rep.power.switching_energy_fj / cycles);
        exact_energy.push(rep.energy_per_read_fj);
        clocks.push(clock);
        feats_all.push(feats);
    }

    let model = SwitchingModel::fit(&rows, &switching, SwitchingModel::physical_default(lib));

    let mut sw_abs = 0.0f64;
    let mut sw_rel_max = 0.0f64;
    let mut en_rel_sum = 0.0f64;
    let mut en_rel_max = 0.0f64;
    let mut predicted: Vec<f64> = Vec::with_capacity(opts.samples);
    for ((f, &y), (&e, &clock)) in feats_all
        .iter()
        .zip(&switching)
        .zip(exact_energy.iter().zip(&clocks))
    {
        let p = model.predict_fj(f);
        sw_abs += (p - y).abs();
        sw_rel_max = sw_rel_max.max(rel_err(p, y));
        let total = p + f.clock_fj_per_read + f.leakage_fj_per_read(clock);
        let r = rel_err(total, e);
        en_rel_sum += r;
        en_rel_max = en_rel_max.max(r);
        predicted.push(total);
    }
    let count = opts.samples.max(1) as f64;

    let report = CalibrationReport {
        family: style.name().to_string(),
        samples: opts.samples,
        model,
        switching_mean_abs_err_fj: sw_abs / count,
        switching_max_rel_err: sw_rel_max,
        energy_mean_rel_err: en_rel_sum / count,
        energy_max_rel_err: en_rel_max,
        rank_correlation: spearman(&predicted, &exact_energy),
        area_max_abs_err_um2: area_err,
        delay_max_abs_err_ns: delay_err,
        clock_max_rel_err: clock_err,
        leakage_max_rel_err: leak_err,
    };
    Ok((model, report))
}

/// Calibrates several families into one [`CoeffStore`].
///
/// # Errors
///
/// Propagates the first family's calibration failure.
pub fn calibrate_families(
    styles: &[ArchStyle],
    dist: &InputDistribution,
    lib: &CellLibrary,
    opts: &CalibrationOptions,
) -> Result<(CoeffStore, Vec<CalibrationReport>), EstError> {
    let mut store = CoeffStore::new(&lib.name);
    let mut reports = Vec::with_capacity(styles.len());
    for &style in styles {
        let (model, report) = calibrate(style, dist, lib, opts)?;
        store.insert(CoeffSet {
            family: style.name().to_string(),
            model,
            samples: report.samples,
            switching_mean_abs_err_fj: report.switching_mean_abs_err_fj,
            energy_max_rel_err: report.energy_max_rel_err,
        });
        reports.push(report);
    }
    Ok((store, reports))
}

impl ResourceEstimator {
    /// A calibrated estimator: runs [`calibrate`] for the family and
    /// installs the fitted model.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn calibrated(
        style: ArchStyle,
        dist: InputDistribution,
        lib: CellLibrary,
        opts: &CalibrationOptions,
    ) -> Result<(Self, CalibrationReport), EstError> {
        let (model, report) = calibrate(style, &dist, &lib, opts)?;
        let est = Self::new(style, dist).with_library(lib).with_model(model);
        Ok((est, report))
    }
}

fn rel_err(predicted: f64, exact: f64) -> f64 {
    if exact.abs() < 1e-12 {
        predicted.abs()
    } else {
        (predicted - exact).abs() / exact.abs()
    }
}

/// Spearman rank correlation (ranks by sort position, ties broken by
/// index — adequate for continuous energies).
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 {
        return 1.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in ra.iter().zip(&rb) {
        num += (x - mean) * (y - mean);
        da += (x - mean).powi(2);
        db += (y - mean).powi(2);
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut r = vec![0.0; v.len()];
    for (pos, &i) in idx.iter().enumerate() {
        r[i] = pos as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sampling_covers_the_domain() {
        let dist = InputDistribution::uniform(4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let reads = sample_reads(&dist, 512, &mut rng);
        assert!(reads.iter().all(|&x| x < 16));
        // All 16 values should appear in 512 uniform draws.
        let mut seen = [false; 16];
        for &x in &reads {
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn skewed_sampling_respects_probabilities() {
        // Mass concentrated on x = 3.
        let mut w = vec![0.01; 8];
        w[3] = 10.0;
        let dist = InputDistribution::from_weights(w).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let reads = sample_reads(&dist, 400, &mut rng);
        let hits = reads.iter().filter(|&&x| x == 3).count();
        assert!(hits > 350, "{hits} of 400 draws hit the 99% mass point");
    }

    #[test]
    fn calibration_is_accurate_on_the_fast_geometry() {
        let opts = CalibrationOptions::fast();
        let dist = InputDistribution::uniform(opts.inputs).unwrap();
        let lib = CellLibrary::nangate45();
        let (_, report) = calibrate(ArchStyle::BtoNormal, &dist, &lib, &opts).unwrap();
        // Structural quantities are exact by construction.
        assert!(report.area_max_abs_err_um2 < 1e-6, "{report:?}");
        assert!(report.delay_max_abs_err_ns < 1e-9, "{report:?}");
        assert!(report.clock_max_rel_err < 1e-9, "{report:?}");
        assert!(report.leakage_max_rel_err < 1e-9, "{report:?}");
        // The fitted energy model must rank candidates faithfully.
        assert!(report.rank_correlation > 0.8, "{report:?}");
        assert!(report.energy_mean_rel_err < 0.10, "{report:?}");
    }

    #[test]
    fn spearman_detects_perfect_and_inverted_order() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }
}
