//! # dalut-est
//!
//! Closed-form resource estimation for decomposition-based approximate
//! LUTs: predicts the power / area / delay that exact netlist sign-off
//! ([`dalut_hw::characterize`]) would report, directly from the
//! decomposition parameters — bound-set size, table bits, per-bit mode
//! mix and the input distribution's toggle densities — without building
//! a netlist. Sweep drivers use it to prune: every candidate is scored
//! analytically, and only the cheapest survivors pay gate-level
//! construction and simulation.
//!
//! The model is exact where the structure allows it and calibrated where
//! it does not:
//!
//! * **Exact**: cell counts, area, critical path, leakage, clock-tree
//!   energy, and the switching of every statically-selected cell
//!   (routing muxes, enable AND2s) — see [`ConfigFeatures`].
//! * **Calibrated**: the data-dependent switching of the DFF-table mux
//!   trees, fitted per architecture family by [`calibrate`] against a
//!   seeded design-of-experiments sweep of exact sign-offs, and
//!   persisted as a [`CoeffStore`] (`dalut-est-coeffs/v1`) next to sweep
//!   checkpoints.
//!
//! ## Example
//!
//! ```
//! use dalut_boolfn::InputDistribution;
//! use dalut_est::{doe::synthetic_config, ResourceEstimator};
//! use dalut_hw::{build_approx_lut, characterize, ArchStyle};
//! use dalut_netlist::CellLibrary;
//!
//! let dist = InputDistribution::uniform(6).unwrap();
//! let config = synthetic_config(6, 3, 3, &["bto", "normal"], 1);
//! let est = ResourceEstimator::new(ArchStyle::BtoNormal, dist);
//! let e = est.estimate(&config).unwrap();
//!
//! // Area and delay agree with exact sign-off to numerical precision.
//! let inst = build_approx_lut(&config, ArchStyle::BtoNormal).unwrap();
//! let reads: Vec<u32> = (0..64).collect();
//! let lib = CellLibrary::nangate45();
//! let exact = characterize(&inst, &reads, &lib, e.clock_period_ns).unwrap();
//! assert!((e.area_um2 - exact.area_um2).abs() < 1e-6);
//! assert!((e.critical_path_ns - exact.critical_path_ns).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod doe;
pub mod features;
pub mod model;

pub use calibrate::{
    calibrate, calibrate_families, sample_reads, CalibrationOptions, CalibrationReport,
};
pub use features::ConfigFeatures;
pub use model::{
    CoeffSet, CoeffStore, EstError, EstimateProvenance, EstimatorMode, ResourceEstimate,
    ResourceEstimator, SwitchingModel, COEFFS_SCHEMA,
};
