//! Closed-form structural features of an architecture mapping.
//!
//! [`ConfigFeatures::extract`] predicts, without building a netlist, the
//! exact cell counts, area, critical path, leakage and clock energy that
//! [`build_approx_lut`](dalut_hw::build_approx_lut) +
//! [`characterize`](dalut_hw::characterize) would report, plus the
//! switching-activity features the calibrated part of the model is fitted
//! on. The derivation mirrors the builders gate for gate:
//!
//! * **Routing box** (per bit): `n·(2^s − 1)` mux2 cells in `s =
//!   ⌈log₂ n⌉` levels with *constant* selects — each tree node statically
//!   forwards one input variable, so its expected toggle rate equals that
//!   variable's [toggle density](InputDistribution::toggle_density) and
//!   its switching energy is exact in expectation.
//! * **Bound table**: `2^b` DFFs (root domain) + a `2^b − 1` mux tree
//!   whose selects are the routed bound variables. Mux outputs here
//!   depend on the stored pattern, so their activity is summarised as a
//!   level-weighted select-toggle feature and calibrated.
//! * **Free tables**: `2^(f+1)` DFFs + `2^(f+1) − 1` muxes each, one
//!   table (BTO-Normal) or two (BTO-Normal-ND) per bit, plus `f + 1`
//!   enable AND2s per gated address bus. A gated-off bus holds its tree
//!   static (zero switching); an enabled bus forwards `φ` and the routed
//!   free variables, whose toggle densities are exact — `φ`'s follows
//!   from the stored bound pattern and the input distribution.
//! * **Mode/output muxes**: 0 (DALTA), 1 (BTO-Normal) or 3
//!   (BTO-Normal-ND) extra mux2 per bit.
//!
//! Area, delay, leakage and clock energy follow *exactly* from these
//! counts and the [`CellLibrary`]; only DFF-tree mux switching needs the
//! fitted coefficients in [`SwitchingModel`](crate::SwitchingModel).

use dalut_boolfn::InputDistribution;
use dalut_core::ApproxLutConfig;
use dalut_decomp::AnyDecomp;
use dalut_hw::{ArchStyle, HwError};
use dalut_netlist::{CellKind, CellLibrary};

/// Analytic structural summary of one `(config, style)` mapping under an
/// input distribution: exact counts/area/delay/leakage/clock plus the
/// switching features the calibrated model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigFeatures {
    /// Architecture family name ([`ArchStyle::name`]).
    pub family: &'static str,
    /// Total mux2 cells (routing + table trees + mode muxes).
    pub mux2: usize,
    /// Total DFF cells (all table entries, gated or not).
    pub dff: usize,
    /// Total AND2 cells (address-bus clock-gating enables).
    pub and2: usize,
    /// Gated (non-root) clock domains instantiated, enabled or not.
    pub gated_domains: usize,
    /// Total cell area plus one ICG per gated domain, µm² — matches
    /// [`area_um2`](dalut_netlist::area_um2) exactly.
    pub area_um2: f64,
    /// Longest register-to-output path, ns — matches
    /// [`critical_path_ns`](dalut_netlist::critical_path_ns) exactly.
    pub critical_path_ns: f64,
    /// Total leakage of every instantiated cell, nW (leakage accrues
    /// regardless of clock gating).
    pub leakage_nw: f64,
    /// Clock-tree energy per read: clock-pin energy of every DFF in an
    /// *enabled* domain plus one ICG per enabled gated domain, fJ.
    pub clock_fj_per_read: f64,
    /// Exact expected switching energy per read of the statically-selected
    /// cells (routing muxes and enabled address AND2s), fJ.
    pub exact_switching_fj: f64,
    /// Level-weighted select toggle density of the bound-table mux trees:
    /// `Σ_bits Σ_k 2^(b−1−k) · t(x_{B,k})` — the expected number of
    /// bound-tree muxes whose select input flips per read.
    pub bound_tree_activity: f64,
    /// Same feature for the *enabled* free-table trees, with `φ`'s exact
    /// toggle density driving the widest level.
    pub free_tree_activity: f64,
}

impl ConfigFeatures {
    /// Extracts the features of mapping `config` onto `style`, with read
    /// inputs drawn i.i.d. from `dist`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedMode`] when a bit's mode cannot be
    /// realised by `style` — exactly when
    /// [`build_approx_lut`](dalut_hw::build_approx_lut) would refuse.
    pub fn extract(
        config: &ApproxLutConfig,
        style: ArchStyle,
        dist: &InputDistribution,
        lib: &CellLibrary,
    ) -> Result<Self, HwError> {
        let n = config.inputs();
        let sel_bits = n.next_power_of_two().trailing_zeros() as usize;
        let t = dist.toggle_densities();
        let mux = lib.params(CellKind::Mux2);
        let and = lib.params(CellKind::And2);
        let dff = lib.params(CellKind::Dff);
        let (free_tables_built, gated_buses, out_muxes) = match style {
            ArchStyle::Dalta => (1usize, 0usize, 0usize),
            ArchStyle::BtoNormal => (1, 1, 1),
            ArchStyle::BtoNormalNd => (2, 2, 3),
        };

        let mut f = Self {
            family: style.name(),
            mux2: 0,
            dff: 0,
            and2: 0,
            gated_domains: 0,
            area_um2: 0.0,
            critical_path_ns: 0.0,
            leakage_nw: 0.0,
            clock_fj_per_read: 0.0,
            exact_switching_fj: 0.0,
            bound_tree_activity: 0.0,
            free_tree_activity: 0.0,
        };

        for bc in config.bits() {
            if !style.supports(bc.mode()) {
                return Err(HwError::UnsupportedMode {
                    style: style.name(),
                    bit: bc.bit,
                    mode: bc.decomp.mode_name(),
                });
            }
            let part = bc.decomp.partition();
            let (b, fr) = (part.bound_size(), part.free_size());
            let bound_vars = part.bound_vars();
            let free_vars = part.free_vars();

            // Routing box: n trees of 2^sel_bits leaves with constant
            // selects. The node at level k, position p forwards leaf
            // `(p << (k+1)) | (src mod 2^(k+1))`; leaves beyond n pad
            // with input 0.
            f.mux2 += n * ((1 << sel_bits) - 1);
            for &src in &dalut_hw::routing::bound_first_permutation(part) {
                for k in 0..sel_bits {
                    let low = src & ((1 << (k + 1)) - 1);
                    for p in 0..1usize << (sel_bits - 1 - k) {
                        let leaf = (p << (k + 1)) | low;
                        let var = if leaf < n { leaf } else { 0 };
                        f.exact_switching_fj += mux.switch_energy_fj * t[var];
                    }
                }
            }

            // Bound table: 2^b root-domain DFFs + mux tree; level k is
            // selected by routed bound variable k.
            f.dff += 1 << b;
            f.mux2 += (1 << b) - 1;
            f.clock_fj_per_read += (1 << b) as f64 * lib.dff_clock_energy_fj;
            for (k, &v) in bound_vars.iter().enumerate() {
                f.bound_tree_activity += (1u64 << (b - 1 - k)) as f64 * t[v as usize];
            }

            // φ's exact toggle density from the programmed bound
            // pattern. Under a uniform distribution every column is
            // equally likely (each has exactly 2^(n−b) preimages), so q
            // is the fraction of true entries — O(2^b) instead of the
            // O(2^n) marginal.
            let contents = bound_contents(&bc.decomp);
            let q: f64 = if dist.is_uniform() {
                contents.iter().filter(|&&v| v).count() as f64 / contents.len() as f64
            } else {
                (0..1u32 << n)
                    .filter(|&x| contents[part.col_of(x) as usize])
                    .map(|x| dist.prob(x))
                    .sum()
            };
            let t_phi = 2.0 * q * (1.0 - q);

            // Free tables: every style instantiates them; activity only
            // accrues on the tables the mode leaves enabled.
            let per_table = 1usize << (fr + 1);
            f.dff += free_tables_built * per_table;
            f.mux2 += free_tables_built * (per_table - 1);
            f.and2 += gated_buses * (fr + 1);
            f.mux2 += out_muxes;
            f.gated_domains += gated_buses;

            let line_sum: f64 = t_phi + free_vars.iter().map(|&v| t[v as usize]).sum::<f64>();
            let active_tables = bc.decomp.active_free_tables();
            if gated_buses > 0 {
                // Enabled AND2s forward their line; gated ones hold 0.
                f.exact_switching_fj += active_tables as f64 * and.switch_energy_fj * line_sum;
            }
            let mut tree_levels = t_phi * (1u64 << fr) as f64;
            for (k, &v) in free_vars.iter().enumerate() {
                tree_levels += (1u64 << (fr - 1 - k)) as f64 * t[v as usize];
            }
            f.free_tree_activity += active_tables as f64 * tree_levels;
            let active_domains = match style {
                ArchStyle::Dalta => {
                    // DALTA's free table is ungated, in the root domain.
                    f.clock_fj_per_read += per_table as f64 * lib.dff_clock_energy_fj;
                    0
                }
                ArchStyle::BtoNormal | ArchStyle::BtoNormalNd => active_tables,
            };
            f.clock_fj_per_read += active_domains as f64
                * (per_table as f64 * lib.dff_clock_energy_fj + lib.icg_energy_fj);

            // Timing: routed select arrival s·d_mux; bound tree launches
            // from clk-to-Q; the free address goes through the gate AND2
            // (when present); then the per-style output mux stack.
            let routed = sel_bits as f64 * mux.delay_ns;
            let bound_out = routed.max(lib.dff_clk_to_q_ns) + b as f64 * mux.delay_ns;
            let gate = if gated_buses > 0 { and.delay_ns } else { 0.0 };
            let free_out = bound_out + gate + (fr + 1) as f64 * mux.delay_ns;
            let y = free_out + out_muxes as f64 * mux.delay_ns;
            f.critical_path_ns = f.critical_path_ns.max(y);
        }

        f.leakage_nw = f.mux2 as f64 * mux.leakage_nw
            + f.dff as f64 * dff.leakage_nw
            + f.and2 as f64 * and.leakage_nw;
        f.area_um2 = f.mux2 as f64 * mux.area_um2
            + f.dff as f64 * dff.area_um2
            + f.and2 as f64 * and.area_um2
            + f.gated_domains as f64 * lib.icg_area_um2;
        Ok(f)
    }

    /// Leakage energy per read at the given clock period, fJ
    /// (`nW × ns = 10⁻³ fJ`).
    #[must_use]
    pub fn leakage_fj_per_read(&self, clock_period_ns: f64) -> f64 {
        self.leakage_nw * clock_period_ns * 1e-3
    }
}

/// The bound-table contents the builders program for each mode (normal:
/// the pattern; BTO: the pattern with the free side zeroed; ND: the
/// shared-variable-folded table).
fn bound_contents(decomp: &AnyDecomp) -> Vec<bool> {
    match decomp {
        AnyDecomp::Normal(d) => d.bound_table().to_vec(),
        AnyDecomp::Bto(d) => d.pattern().to_vec(),
        AnyDecomp::NonDisjoint(d) => d.bound_table(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doe::synthetic_config;
    use dalut_hw::build_approx_lut;
    use dalut_netlist::{area_um2, critical_path_ns, CellKind};

    fn check_exact_counts(config: &ApproxLutConfig, style: ArchStyle) {
        let lib = CellLibrary::nangate45();
        let dist = InputDistribution::uniform(config.inputs()).unwrap();
        let feats = ConfigFeatures::extract(config, style, &dist, &lib).unwrap();
        let inst = build_approx_lut(config, style).unwrap();
        let nl = inst.netlist();
        let count = |kind: CellKind| {
            nl.kind_counts()
                .iter()
                .find(|(k, _)| *k == kind)
                .map_or(0, |&(_, c)| c)
        };
        assert_eq!(feats.mux2, count(CellKind::Mux2), "{style:?} mux2");
        assert_eq!(feats.dff, count(CellKind::Dff), "{style:?} dff");
        assert_eq!(feats.and2, count(CellKind::And2), "{style:?} and2");
        assert_eq!(
            feats.gated_domains + 1,
            nl.domains().len(),
            "{style:?} domains"
        );
        let area = area_um2(nl, &lib);
        assert!(
            (feats.area_um2 - area).abs() < 1e-6,
            "{style:?} area {} vs {area}",
            feats.area_um2
        );
        let delay = critical_path_ns(nl, &lib).unwrap();
        assert!(
            (feats.critical_path_ns - delay).abs() < 1e-9,
            "{style:?} delay {} vs {delay}",
            feats.critical_path_ns
        );
    }

    #[test]
    fn counts_area_delay_match_built_netlists() {
        for (style, modes) in [
            (ArchStyle::Dalta, vec!["normal"]),
            (ArchStyle::BtoNormal, vec!["bto", "normal"]),
            (ArchStyle::BtoNormalNd, vec!["bto", "normal", "nd"]),
        ] {
            let config = synthetic_config(7, 6, 3, &modes, 11);
            check_exact_counts(&config, style);
        }
    }

    #[test]
    fn unsupported_mode_is_refused_like_the_builder() {
        let config = synthetic_config(6, 3, 2, &["nd"], 5);
        let dist = InputDistribution::uniform(6).unwrap();
        let lib = CellLibrary::nangate45();
        let err = ConfigFeatures::extract(&config, ArchStyle::Dalta, &dist, &lib);
        assert!(matches!(err, Err(HwError::UnsupportedMode { .. })));
        assert!(build_approx_lut(&config, ArchStyle::Dalta).is_err());
    }

    #[test]
    fn bto_bits_have_no_free_tree_activity() {
        let dist = InputDistribution::uniform(6).unwrap();
        let lib = CellLibrary::nangate45();
        let bto = synthetic_config(6, 2, 3, &["bto"], 9);
        let feats = ConfigFeatures::extract(&bto, ArchStyle::BtoNormal, &dist, &lib).unwrap();
        assert_eq!(feats.free_tree_activity, 0.0);
        // Gated domains exist (area) but none are clocked beyond the root.
        assert_eq!(feats.gated_domains, 2);
        let root_only = feats.dff as f64; // all DFFs instantiated
        assert!(feats.clock_fj_per_read < root_only * lib.dff_clock_energy_fj);
    }
}
