//! The calibrated resource model and its persistence.
//!
//! Area, delay, leakage and clock energy come *exactly* from
//! [`ConfigFeatures`]; the only data-dependent quantity is the switching
//! energy of the DFF-tree muxes, which [`SwitchingModel`] predicts as a
//! linear combination of the activity features and whose coefficients
//! [`calibrate`](crate::calibrate) fits against exact
//! netlist sign-off. Coefficients are serialised as a
//! [`CoeffStore`] (`dalut-est-coeffs/v1`) next to sweep checkpoints so a
//! resumed run prunes with the same model it started with.

use std::fmt;
use std::path::Path;

use dalut_boolfn::InputDistribution;
use dalut_core::{atomic_write, ApproxLutConfig, ResourceScorer};
use dalut_hw::{ArchStyle, HwError};
use dalut_netlist::CellLibrary;
use serde::{Deserialize, Serialize};

use crate::features::ConfigFeatures;

/// Schema tag of the serialised coefficient store.
pub const COEFFS_SCHEMA: &str = "dalut-est-coeffs/v1";

/// Errors of the estimation layer: hardware-mapping refusals, exact
/// sign-off failures during calibration, and coefficient-store I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum EstError {
    /// The configuration cannot be mapped onto the architecture.
    Hw(HwError),
    /// Exact sign-off failed while calibrating.
    Netlist(dalut_netlist::NetlistError),
    /// Coefficient store I/O failed.
    Io(std::io::Error),
    /// Coefficient store (de)serialisation failed.
    Json(serde_json::Error),
    /// The coefficient store has an unknown schema tag.
    Schema {
        /// The tag found in the file.
        found: String,
    },
}

impl fmt::Display for EstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Hw(e) => write!(f, "estimator: {e}"),
            Self::Netlist(e) => write!(f, "estimator sign-off: {e}"),
            Self::Io(e) => write!(f, "coefficient store: {e}"),
            Self::Json(e) => write!(f, "coefficient store: {e}"),
            Self::Schema { found } => {
                write!(
                    f,
                    "coefficient store schema {found:?}, expected {COEFFS_SCHEMA:?}"
                )
            }
        }
    }
}

impl std::error::Error for EstError {}

impl From<HwError> for EstError {
    fn from(e: HwError) -> Self {
        Self::Hw(e)
    }
}
impl From<dalut_netlist::NetlistError> for EstError {
    fn from(e: dalut_netlist::NetlistError) -> Self {
        Self::Netlist(e)
    }
}
impl From<std::io::Error> for EstError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
impl From<serde_json::Error> for EstError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

// `EstimatorMode` moved to `dalut_core::estimate` so `JobSpec` can carry
// it as a semantic field; re-exported here for backwards compatibility.
pub use dalut_core::EstimatorMode;

/// Linear switching-energy model, fJ per read:
/// `c₀ + c₁·exact + c₂·bound_activity + c₃·free_activity` with the three
/// feature terms from [`ConfigFeatures`]. Coefficients are clamped
/// non-negative so predicted energy is monotone in the activity features
/// (and therefore in active table bits).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchingModel {
    /// Per-read intercept `c₀`, fJ (window transients, output muxes).
    pub intercept_fj: f64,
    /// Scale `c₁` on the exactly-computed switching term (≈ 1).
    pub exact_scale: f64,
    /// Energy `c₂` per expected bound-tree select toggle, fJ.
    pub bound_fj: f64,
    /// Energy `c₃` per expected free-tree select toggle, fJ.
    pub free_fj: f64,
}

impl SwitchingModel {
    /// Uncalibrated physical prior: the exact term at unit scale, and
    /// each expected select toggle re-evaluating one mux output
    /// half the time.
    #[must_use]
    pub fn physical_default(lib: &CellLibrary) -> Self {
        let mux_fj = lib.params(dalut_netlist::CellKind::Mux2).switch_energy_fj;
        Self {
            intercept_fj: 0.0,
            exact_scale: 1.0,
            bound_fj: 0.5 * mux_fj,
            free_fj: 0.5 * mux_fj,
        }
    }

    /// Predicted switching energy per read for extracted features, fJ.
    #[must_use]
    pub fn predict_fj(&self, f: &ConfigFeatures) -> f64 {
        (self.intercept_fj
            + self.exact_scale * f.exact_switching_fj
            + self.bound_fj * f.bound_tree_activity
            + self.free_fj * f.free_tree_activity)
            .max(0.0)
    }

    /// Least-squares fit of the four coefficients on feature rows
    /// `[1, exact, bound, free]` against observed switching energies,
    /// with negative coefficients clamped to zero (and the fit repeated
    /// on the remaining terms). Falls back to `fallback` if the system
    /// is degenerate.
    #[must_use]
    pub fn fit(rows: &[[f64; 4]], targets: &[f64], fallback: Self) -> Self {
        let mut active = [true; 4];
        loop {
            let Some(c) = solve_least_squares(rows, targets, &active) else {
                return fallback;
            };
            // Clamp the most negative coefficient and refit without it.
            let worst = (0..4)
                .filter(|&j| active[j] && c[j] < 0.0)
                .min_by(|&a, &b| c[a].partial_cmp(&c[b]).unwrap_or(std::cmp::Ordering::Equal));
            match worst {
                Some(j) => active[j] = false,
                None => {
                    return Self {
                        intercept_fj: c[0],
                        exact_scale: c[1],
                        bound_fj: c[2],
                        free_fj: c[3],
                    }
                }
            }
        }
    }
}

/// Solves the normal equations over the active columns; inactive columns
/// get coefficient 0. Returns `None` when the (ridge-stabilised) system
/// is still singular.
fn solve_least_squares(rows: &[[f64; 4]], targets: &[f64], active: &[bool; 4]) -> Option<[f64; 4]> {
    let cols: Vec<usize> = (0..4).filter(|&j| active[j]).collect();
    let k = cols.len();
    if k == 0 || rows.len() < k {
        return None;
    }
    // Normal equations AᵀA c = Aᵀy with a tiny ridge for stability.
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (row, &y) in rows.iter().zip(targets) {
        for (i, &ci) in cols.iter().enumerate() {
            aty[i] += row[ci] * y;
            for (j, &cj) in cols.iter().enumerate() {
                ata[i][j] += row[ci] * row[cj];
            }
        }
    }
    let ridge = 1e-9 * (0..k).map(|i| ata[i][i]).fold(1.0f64, |m, d| m.max(d));
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += ridge;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&a, &b| {
                ata[a][col]
                    .abs()
                    .partial_cmp(&ata[b][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(col);
        if ata[pivot][col].abs() < 1e-30 {
            return None;
        }
        ata.swap(col, pivot);
        aty.swap(col, pivot);
        let (pivot_rows, rest) = ata.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (r, row) in rest.iter_mut().enumerate() {
            let factor = row[col] / pivot_row[col];
            for (cell, &p) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * p;
            }
            aty[col + 1 + r] -= factor * aty[col];
        }
    }
    let mut sol = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut v = aty[i];
        for j in i + 1..k {
            v -= ata[i][j] * sol[j];
        }
        sol[i] = v / ata[i][i];
    }
    let mut full = [0.0f64; 4];
    for (i, &c) in cols.iter().enumerate() {
        full[c] = sol[i];
    }
    Some(full)
}

/// Where an estimate's clock period came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ClockSource {
    /// Derived from the analytic critical path (`delay × 1.05`, the
    /// benches' margin).
    DelayDerived,
    /// A sweep-wide clock imposed with
    /// [`ResourceEstimator::with_clock`].
    Override,
}

/// Term-by-term provenance of one estimate — which model produced it and
/// how the energy decomposes, for reports and post-hoc audits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateProvenance {
    /// Architecture family the model was selected for.
    pub family: String,
    /// `false` while the physical prior is in use, `true` after
    /// [`calibrate`](crate::calibrate) or a loaded [`CoeffStore`].
    pub calibrated: bool,
    /// Where the clock period came from.
    pub clock_source: ClockSource,
    /// Exactly-computed switching term after scaling, fJ/read.
    pub exact_term_fj: f64,
    /// Calibrated bound-tree term, fJ/read.
    pub bound_term_fj: f64,
    /// Calibrated free-tree term, fJ/read.
    pub free_term_fj: f64,
    /// Model intercept, fJ/read.
    pub intercept_fj: f64,
}

/// One closed-form resource estimate: the quantities exact sign-off
/// would report, predicted without building a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Total area, µm² (exact).
    pub area_um2: f64,
    /// Critical-path delay, ns (exact).
    pub critical_path_ns: f64,
    /// Clock period the energy is quoted at, ns.
    pub clock_period_ns: f64,
    /// Modelled switching energy per read, fJ.
    pub switching_fj: f64,
    /// Clock-tree energy per read, fJ (exact).
    pub clock_fj: f64,
    /// Leakage energy per read at the clock period, fJ (exact).
    pub leakage_fj: f64,
    /// Total predicted energy per read, fJ.
    pub energy_per_read_fj: f64,
    /// How this estimate was produced.
    pub provenance: EstimateProvenance,
}

/// The closed-form estimator for one architecture family: extracts
/// [`ConfigFeatures`] and applies the (calibrated) [`SwitchingModel`].
///
/// Implements [`ResourceScorer`], so sweep drivers can rank candidates
/// with [`select_survivors`](dalut_core::select_survivors) and pay exact
/// sign-off only for the cheapest.
#[derive(Debug, Clone)]
pub struct ResourceEstimator {
    style: ArchStyle,
    dist: InputDistribution,
    lib: CellLibrary,
    model: SwitchingModel,
    calibrated: bool,
    clock_ns: Option<f64>,
}

impl ResourceEstimator {
    /// An uncalibrated estimator (physical-prior switching model) over
    /// the Nangate45 library.
    #[must_use]
    pub fn new(style: ArchStyle, dist: InputDistribution) -> Self {
        let lib = CellLibrary::nangate45();
        let model = SwitchingModel::physical_default(&lib);
        Self {
            style,
            dist,
            lib,
            model,
            calibrated: false,
            clock_ns: None,
        }
    }

    /// Replaces the cell library (resets to the physical prior unless a
    /// calibrated model is installed afterwards).
    #[must_use]
    pub fn with_library(mut self, lib: CellLibrary) -> Self {
        self.model = SwitchingModel::physical_default(&lib);
        self.calibrated = false;
        self.lib = lib;
        self
    }

    /// Installs fitted switching coefficients.
    #[must_use]
    pub fn with_model(mut self, model: SwitchingModel) -> Self {
        self.model = model;
        self.calibrated = true;
        self
    }

    /// Quotes every estimate at a fixed sweep-wide clock period instead
    /// of each candidate's own `delay × 1.05`.
    #[must_use]
    pub fn with_clock(mut self, clock_period_ns: f64) -> Self {
        self.clock_ns = Some(clock_period_ns);
        self
    }

    /// The architecture family this estimator models.
    #[must_use]
    pub fn style(&self) -> ArchStyle {
        self.style
    }

    /// The cell library estimates are quoted in.
    #[must_use]
    pub fn library(&self) -> &CellLibrary {
        &self.lib
    }

    /// The current switching model.
    #[must_use]
    pub fn model(&self) -> SwitchingModel {
        self.model
    }

    /// Whether fitted (rather than prior) coefficients are installed.
    #[must_use]
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Estimates area, delay and per-read energy of `config` on this
    /// family — closed-form, no netlist is built.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedMode`] exactly when the builder
    /// would refuse the mapping.
    pub fn estimate(&self, config: &ApproxLutConfig) -> Result<ResourceEstimate, HwError> {
        let f = ConfigFeatures::extract(config, self.style, &self.dist, &self.lib)?;
        let (clock_period_ns, clock_source) = match self.clock_ns {
            Some(c) => (c, ClockSource::Override),
            None => (f.critical_path_ns * 1.05, ClockSource::DelayDerived),
        };
        let switching_fj = self.model.predict_fj(&f);
        let leakage_fj = f.leakage_fj_per_read(clock_period_ns);
        let energy = switching_fj + f.clock_fj_per_read + leakage_fj;
        Ok(ResourceEstimate {
            area_um2: f.area_um2,
            critical_path_ns: f.critical_path_ns,
            clock_period_ns,
            switching_fj,
            clock_fj: f.clock_fj_per_read,
            leakage_fj,
            energy_per_read_fj: energy,
            provenance: EstimateProvenance {
                family: f.family.to_string(),
                calibrated: self.calibrated,
                clock_source,
                exact_term_fj: self.model.exact_scale * f.exact_switching_fj,
                bound_term_fj: self.model.bound_fj * f.bound_tree_activity,
                free_term_fj: self.model.free_fj * f.free_tree_activity,
                intercept_fj: self.model.intercept_fj,
            },
        })
    }
}

impl ResourceScorer for ResourceEstimator {
    fn score(&self, config: &ApproxLutConfig) -> f64 {
        self.estimate(config)
            .map_or(f64::INFINITY, |e| e.energy_per_read_fj)
    }
    fn label(&self) -> &str {
        self.style.name()
    }
}

/// Fitted coefficients for one family plus the fit quality they were
/// accepted at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoeffSet {
    /// Architecture family name ([`ArchStyle::name`]).
    pub family: String,
    /// The fitted switching model.
    pub model: SwitchingModel,
    /// DoE samples the fit used.
    pub samples: usize,
    /// Mean absolute switching-energy residual over the DoE, fJ/read.
    pub switching_mean_abs_err_fj: f64,
    /// Worst relative total-energy error over the DoE.
    pub energy_max_rel_err: f64,
}

/// The serialised coefficient store (`dalut-est-coeffs/v1`), written next
/// to sweep checkpoints so resumed runs prune with the model they started
/// with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoeffStore {
    /// Schema tag ([`COEFFS_SCHEMA`]).
    pub schema: String,
    /// Cell-library name the coefficients were fitted against.
    pub library: String,
    /// One coefficient set per calibrated family.
    pub families: Vec<CoeffSet>,
}

impl CoeffStore {
    /// An empty store for the named library.
    #[must_use]
    pub fn new(library: &str) -> Self {
        Self {
            schema: COEFFS_SCHEMA.to_string(),
            library: library.to_string(),
            families: Vec::new(),
        }
    }

    /// Inserts (or replaces) a family's coefficients.
    pub fn insert(&mut self, set: CoeffSet) {
        match self.families.iter_mut().find(|s| s.family == set.family) {
            Some(slot) => *slot = set,
            None => self.families.push(set),
        }
    }

    /// Coefficients for a family, if calibrated.
    #[must_use]
    pub fn get(&self, family: &str) -> Option<&CoeffSet> {
        self.families.iter().find(|s| s.family == family)
    }

    /// Atomically writes the store as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on serialisation or I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), EstError> {
        let json = serde_json::to_vec_pretty(self)?;
        atomic_write(path, &json)?;
        Ok(())
    }

    /// Loads and schema-checks a store.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O or parse failure, or an unknown schema.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, EstError> {
        let bytes = std::fs::read(path)?;
        let store: Self = serde_json::from_slice(&bytes)?;
        if store.schema != COEFFS_SCHEMA {
            return Err(EstError::Schema {
                found: store.schema,
            });
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doe::synthetic_config;

    #[test]
    fn estimator_mode_round_trips() {
        for (s, m) in [
            ("off", EstimatorMode::Off),
            ("prune", EstimatorMode::Prune),
            ("trust", EstimatorMode::Trust),
        ] {
            assert_eq!(s.parse::<EstimatorMode>().unwrap(), m);
            assert_eq!(m.to_string(), s);
        }
        assert!("exact".parse::<EstimatorMode>().is_err());
        assert_eq!(EstimatorMode::default(), EstimatorMode::Prune);
    }

    #[test]
    fn fit_recovers_planted_nonnegative_coefficients() {
        let truth = [3.0, 1.1, 0.8, 0.6];
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24usize {
            let r = [
                1.0,
                (i % 5) as f64 + 0.5,
                ((i * 7) % 11) as f64,
                ((i * 3) % 13) as f64 * 0.5,
            ];
            ys.push(truth[0] + truth[1] * r[1] + truth[2] * r[2] + truth[3] * r[3]);
            rows.push(r);
        }
        let lib = CellLibrary::nangate45();
        let m = SwitchingModel::fit(&rows, &ys, SwitchingModel::physical_default(&lib));
        assert!((m.intercept_fj - truth[0]).abs() < 1e-6);
        assert!((m.exact_scale - truth[1]).abs() < 1e-6);
        assert!((m.bound_fj - truth[2]).abs() < 1e-6);
        assert!((m.free_fj - truth[3]).abs() < 1e-6);
    }

    #[test]
    fn fit_clamps_negative_coefficients_to_zero() {
        // free term planted strongly negative: the clamp must zero it
        // rather than predict negative energies.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..16usize {
            let r = [1.0, (i % 4) as f64, ((i * 5) % 7) as f64, (i % 3) as f64];
            ys.push(2.0 + 1.0 * r[1] + 0.5 * r[2] - 3.0 * r[3]);
            rows.push(r);
        }
        let lib = CellLibrary::nangate45();
        let m = SwitchingModel::fit(&rows, &ys, SwitchingModel::physical_default(&lib));
        assert_eq!(m.free_fj, 0.0);
        assert!(m.exact_scale >= 0.0 && m.bound_fj >= 0.0);
    }

    #[test]
    fn degenerate_fit_falls_back_to_prior() {
        let lib = CellLibrary::nangate45();
        let prior = SwitchingModel::physical_default(&lib);
        let m = SwitchingModel::fit(&[], &[], prior);
        assert_eq!(m, prior);
    }

    #[test]
    fn estimate_carries_provenance_and_positive_terms() {
        let dist = InputDistribution::uniform(6).unwrap();
        let est = ResourceEstimator::new(ArchStyle::BtoNormalNd, dist);
        let config = synthetic_config(6, 3, 3, &["bto", "normal", "nd"], 21);
        let e = est.estimate(&config).unwrap();
        assert!(e.area_um2 > 0.0 && e.critical_path_ns > 0.0);
        assert!(e.energy_per_read_fj > 0.0);
        assert!(!e.provenance.calibrated);
        assert_eq!(e.provenance.family, "BTO-Normal-ND");
        assert_eq!(e.provenance.clock_source, ClockSource::DelayDerived);
        let fixed = ResourceEstimator::new(
            ArchStyle::BtoNormalNd,
            InputDistribution::uniform(6).unwrap(),
        )
        .with_clock(2.0);
        let e2 = fixed.estimate(&config).unwrap();
        assert_eq!(e2.clock_period_ns, 2.0);
        assert_eq!(e2.provenance.clock_source, ClockSource::Override);
    }

    #[test]
    fn scorer_ranks_unsupported_configs_last() {
        let dist = InputDistribution::uniform(6).unwrap();
        let est = ResourceEstimator::new(ArchStyle::Dalta, dist);
        let nd = synthetic_config(6, 2, 3, &["nd"], 4);
        assert_eq!(est.score(&nd), f64::INFINITY);
        assert_eq!(est.label(), "DALTA");
        let ok = synthetic_config(6, 2, 3, &["normal"], 4);
        assert!(est.score(&ok).is_finite());
    }

    #[test]
    fn coeff_store_round_trips_and_checks_schema() {
        let dir = std::env::temp_dir().join("dalut-est-coeffs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("estimator_coeffs.json");
        let mut store = CoeffStore::new("nangate45-inspired");
        store.insert(CoeffSet {
            family: "DALTA".to_string(),
            model: SwitchingModel {
                intercept_fj: 1.0,
                exact_scale: 1.0,
                bound_fj: 0.7,
                free_fj: 0.7,
            },
            samples: 12,
            switching_mean_abs_err_fj: 0.5,
            energy_max_rel_err: 0.01,
        });
        store.save(&path).unwrap();
        let loaded = CoeffStore::load(&path).unwrap();
        assert_eq!(loaded, store);
        assert!(loaded.get("DALTA").is_some());
        assert!(loaded.get("BTO-Normal").is_none());

        let bad = dir.join("bad_coeffs.json");
        std::fs::write(&bad, br#"{"schema":"nope/v0","library":"x","families":[]}"#).unwrap();
        assert!(matches!(
            CoeffStore::load(&bad),
            Err(EstError::Schema { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
