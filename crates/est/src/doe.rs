//! Synthetic design-of-experiments configurations.
//!
//! Calibration (and the `scalecheck` harness) need architecture mappings
//! at arbitrary geometries without running a search: energy, area and
//! latency depend on the decomposition's *structure* and the tables'
//! switching activity, not on which Boolean function they happen to hold.
//! Random patterns/row types give realistic activity; the mode mix and
//! bound-set size span the feature space the switching model is fitted
//! over.

use dalut_boolfn::Partition;
use dalut_core::{ApproxLutConfig, BitConfig};
use dalut_decomp::{AnyDecomp, BtoDecomp, DisjointDecomp, NonDisjointDecomp, RowType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic per-bit decomposition at the given geometry: a random
/// `b`-of-`n` partition with random pattern/type vectors. `mode` is one
/// of `"bto"`, `"normal"` or `"nd"`.
///
/// # Panics
///
/// Panics on an unknown mode string, or on geometries no decomposition
/// exists for (`nd` needs `b ≥ 2` so a bound variable can be shared).
pub fn synthetic_bit(bit: usize, n: usize, b: usize, mode: &str, rng: &mut StdRng) -> BitConfig {
    let part = Partition::random(n, b, rng);
    let pattern: Vec<bool> = (0..part.cols()).map(|_| rng.random()).collect();
    let decomp = match mode {
        "bto" => AnyDecomp::Bto(BtoDecomp::new(part, pattern).expect("dims")),
        "normal" => {
            let types: Vec<RowType> = (0..part.rows())
                .map(|_| RowType::from_code(rng.random_range(1..=4)).expect("code"))
                .collect();
            AnyDecomp::Normal(DisjointDecomp::new(part, pattern, types).expect("dims"))
        }
        "nd" => {
            let s = part.bound_vars()[0] as usize;
            let reduced_bound = dalut_decomp::reduce_mask(part.bound_mask() & !(1u32 << s), s);
            let reduced = Partition::new(n - 1, reduced_bound).expect("valid");
            let mk_half = |rng: &mut StdRng| {
                let pat: Vec<bool> = (0..reduced.cols()).map(|_| rng.random()).collect();
                let types: Vec<RowType> = (0..reduced.rows())
                    .map(|_| RowType::from_code(rng.random_range(1..=4)).expect("code"))
                    .collect();
                DisjointDecomp::new(reduced, pat, types).expect("dims")
            };
            let (h0, h1) = (mk_half(rng), mk_half(rng));
            AnyDecomp::NonDisjoint(NonDisjointDecomp::new(part, s, h0, h1).expect("valid"))
        }
        other => unreachable!("unknown mode {other}"),
    };
    BitConfig {
        bit,
        decomp,
        expected_error: 0.0,
    }
}

/// A synthetic `n`-input / `m`-output configuration whose bits cycle
/// through `modes` (see [`synthetic_bit`]), deterministically seeded.
///
/// # Panics
///
/// Panics if `modes` is empty or a bit geometry is invalid.
pub fn synthetic_config(
    n: usize,
    m: usize,
    b: usize,
    modes: &[&str],
    seed: u64,
) -> ApproxLutConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = (0..m)
        .map(|k| synthetic_bit(k, n, b, modes[k % modes.len()], &mut rng))
        .collect();
    ApproxLutConfig::new(n, m, bits).expect("valid synthetic config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_core::BitMode;

    #[test]
    fn modes_cycle_and_seed_is_deterministic() {
        let a = synthetic_config(6, 4, 3, &["bto", "normal"], 42);
        let b = synthetic_config(6, 4, 3, &["bto", "normal"], 42);
        assert_eq!(a, b);
        assert_eq!(a.mode_counts(), (2, 2, 0));
        assert_eq!(a.bits()[0].mode(), BitMode::Bto);
        assert_eq!(a.bits()[1].mode(), BitMode::Normal);
    }

    #[test]
    fn nd_bits_fold_a_shared_variable() {
        let c = synthetic_config(6, 2, 3, &["nd"], 3);
        assert_eq!(c.mode_counts(), (0, 0, 2));
        // The decomposition still spans all n variables.
        assert_eq!(c.bits()[0].decomp.partition().n(), 6);
    }
}
