//! Runtime reprogramming of a bound table through its DFF write port.
//!
//! The paper's tables are "RAMs consisting of D flip-flops", so a built
//! instance can be *rewritten* in place instead of resynthesised. This
//! module packages the gate-level flow the `runtime_reprogram` example
//! pioneered — a writable bound table with an address decoder and
//! single-bit write port — as a reusable [`WritableBoundTable`], and is
//! the hardware grounding for [`ArchInstance::rewrite_bound_table`]
//! (which models the same diff-write sequence at the preset level).
//!
//! ```
//! use dalut_boolfn::Partition;
//! use dalut_hw::WritableBoundTable;
//!
//! let part = Partition::new(4, 0b1100).unwrap();
//! let hw = WritableBoundTable::new(4, part, &[false, true, true, false]).unwrap();
//! let mut sim = hw.simulator().unwrap();
//! assert_eq!(hw.read_all(&mut sim), vec![false, true, true, false]);
//! let writes = hw.reprogram(&mut sim, &[true, true, false, false]).unwrap();
//! assert_eq!(writes, 2);
//! assert_eq!(hw.read_all(&mut sim), vec![true, true, false, false]);
//! ```
//!
//! [`ArchInstance::rewrite_bound_table`]: crate::ArchInstance::rewrite_bound_table

use crate::arch::HwError;
use crate::lut::dff_lut_writable;
use dalut_boolfn::Partition;
use dalut_netlist::{Netlist, Simulator, ROOT_DOMAIN};

/// A standalone writable bound table: one `2^b`-entry DFF-RAM LUT
/// addressed by the bound variables of `part`, with a single-bit write
/// port (`wdata`/`wen`/`waddr` inputs) for in-place reprogramming.
///
/// Input word layout for [`Simulator::eval_word`]:
/// `[x (n bits) | wdata | wen | waddr (b bits)]`, LSB first.
#[derive(Debug)]
pub struct WritableBoundTable {
    nl: Netlist,
    presets: Vec<(dalut_netlist::NetId, bool)>,
    n: usize,
    bound_vars: Vec<u32>,
}

impl WritableBoundTable {
    /// Builds the hardware: routing from the `n` input bits to the bound
    /// columns of `part`, the writable LUT, and the write-port pins.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::TableShape`] unless `init` holds exactly
    /// `2^bound_size` entries.
    pub fn new(n: usize, part: Partition, init: &[bool]) -> Result<Self, HwError> {
        let b = part.bound_size();
        if init.len() != 1 << b {
            return Err(HwError::TableShape {
                expected: 1 << b,
                got: init.len(),
            });
        }
        let mut nl = Netlist::new("reprogrammable_bound_table");
        let x = nl.input_bus("x", n);
        let wdata = nl.input("wdata");
        let wen = nl.input("wen");
        let waddr = nl.input_bus("waddr", b);
        let bound_vars = part.bound_vars();
        let bound_nets: Vec<_> = bound_vars.iter().map(|&v| x[v as usize]).collect();
        let lut = dff_lut_writable(&mut nl, init, &bound_nets, wdata, wen, &waddr, ROOT_DOMAIN);
        nl.output("y", lut.output);
        Ok(Self {
            nl,
            presets: lut.presets,
            n,
            bound_vars,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Number of table entries (`2^bound_size`).
    pub fn entries(&self) -> usize {
        1 << self.bound_vars.len()
    }

    /// Creates a simulator with the initial contents loaded.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::Netlist`] if the netlist cannot be simulated.
    pub fn simulator(&self) -> Result<Simulator<'_>, HwError> {
        let mut sim = Simulator::new(&self.nl)?;
        for &(q, v) in &self.presets {
            sim.preset_dff(q, v)?;
        }
        Ok(sim)
    }

    /// Reads the stored bit for one bound column (a read cycle with the
    /// write port idle).
    pub fn read_bit(&self, sim: &mut Simulator<'_>, column: u64) -> bool {
        // Column bit j drives bound variable j of x; `y` is the only
        // output, so `eval_word` returns it in bit 0.
        let mut word = 0u64;
        for (j, &v) in self.bound_vars.iter().enumerate() {
            word |= ((column >> j) & 1) << v;
        }
        sim.eval_word(word) == 1
    }

    /// Reads back the whole table, in bound-column order.
    pub fn read_all(&self, sim: &mut Simulator<'_>) -> Vec<bool> {
        (0..self.entries() as u64)
            .map(|c| self.read_bit(sim, c))
            .collect()
    }

    /// Writes one bit: a cycle with `wen` high, the write address
    /// selecting `entry` and `wdata` carrying `value`.
    pub fn write_bit(&self, sim: &mut Simulator<'_>, entry: u64, value: bool) {
        let w = (u64::from(value) << self.n) | (1u64 << (self.n + 1)) | (entry << (self.n + 2));
        sim.eval_word(w);
    }

    /// Reprograms the table to `pattern` with a diff write — only
    /// entries whose stored value differs are written. Returns the
    /// number of single-bit write cycles issued.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::TableShape`] unless `pattern` covers every
    /// entry.
    pub fn reprogram(&self, sim: &mut Simulator<'_>, pattern: &[bool]) -> Result<usize, HwError> {
        if pattern.len() != self.entries() {
            return Err(HwError::TableShape {
                expected: self.entries(),
                got: pattern.len(),
            });
        }
        let mut writes = 0;
        for (entry, &v) in pattern.iter().enumerate() {
            if self.read_bit(sim, entry as u64) != v {
                self.write_bit(sim, entry as u64, v);
                writes += 1;
            }
        }
        Ok(writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_wrong_shapes() {
        let part = Partition::new(6, 0b111000).unwrap();
        assert!(matches!(
            WritableBoundTable::new(6, part, &[true; 4]),
            Err(HwError::TableShape {
                expected: 8,
                got: 4
            })
        ));
        let hw = WritableBoundTable::new(6, part, &[false; 8]).unwrap();
        let mut sim = hw.simulator().unwrap();
        assert!(matches!(
            hw.reprogram(&mut sim, &[true; 3]),
            Err(HwError::TableShape { .. })
        ));
    }

    #[test]
    fn serves_then_rewrites_in_place() {
        let part = Partition::new(6, 0b111000).unwrap();
        let a: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let hw = WritableBoundTable::new(6, part, &a).unwrap();
        let mut sim = hw.simulator().unwrap();
        assert_eq!(hw.read_all(&mut sim), a);
        let expected = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert_eq!(hw.reprogram(&mut sim, &b).unwrap(), expected);
        assert_eq!(hw.read_all(&mut sim), b);
        // Reprogramming to the same contents is free.
        assert_eq!(hw.reprogram(&mut sim, &b).unwrap(), 0);
    }

    #[test]
    fn reads_do_not_disturb_storage() {
        let part = Partition::new(4, 0b0011).unwrap();
        let pat = vec![true, false, false, true];
        let hw = WritableBoundTable::new(4, part, &pat).unwrap();
        let mut sim = hw.simulator().unwrap();
        for _ in 0..3 {
            assert_eq!(hw.read_all(&mut sim), pat);
        }
    }
}
