//! Memoized netlist construction for sweep drivers.
//!
//! Pruned sweeps repeatedly sign off the same survivor configuration —
//! the unpruned baseline, re-characterization under a different clock, a
//! resumed run replaying an item. [`InstanceCache`] keys built
//! [`ArchInstance`]s by an FNV-1a fingerprint of `(style, config)` (the
//! same hashing the checkpoint `WorkKey` machinery uses) so repeated
//! sign-offs of one survivor don't pay gate construction twice.
//!
//! The cache stores instances behind `Arc`, so entries stay alive for as
//! long as any caller holds one; it is `Sync` and safe to share across
//! sweep worker threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dalut_core::{fingerprint, ApproxLutConfig};

use crate::arch::{build_approx_lut, ArchStyle, HwError};
use crate::instance::ArchInstance;

/// A thread-safe memo table from `(style, config)` fingerprints to built
/// architecture instances.
#[derive(Debug, Default)]
pub struct InstanceCache {
    map: Mutex<HashMap<u64, Arc<ArchInstance>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl InstanceCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The FNV-1a fingerprint used as the cache key: the architecture
    /// style name plus the canonical JSON serialisation of the
    /// configuration.
    #[must_use]
    pub fn config_fingerprint(config: &ApproxLutConfig, style: ArchStyle) -> u64 {
        let json = serde_json::to_string(config).unwrap_or_default();
        fingerprint(&format!("{}/{json}", style.name()))
    }

    /// Returns the cached instance for `(config, style)`, building (and
    /// caching) it on first request.
    ///
    /// # Errors
    ///
    /// Propagates [`HwError`] from [`build_approx_lut`] on a miss; build
    /// failures are not cached.
    pub fn get_or_build(
        &self,
        config: &ApproxLutConfig,
        style: ArchStyle,
    ) -> Result<Arc<ArchInstance>, HwError> {
        let key = Self::config_fingerprint(config, style);
        if let Some(hit) = self.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Build outside the lock: construction is the expensive part and
        // other keys should not serialise behind it. A racing builder of
        // the same key wastes one build but both callers get one entry.
        let built = Arc::new(build_approx_lut(config, style)?);
        let entry = self
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&built))
            .clone();
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// Cache hits served so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= builds attempted, minus failed builds) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct instances currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache holds no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<ArchInstance>>> {
        // A panic while holding the map lock leaves only a possibly
        // part-filled memo table; the data stays valid, so recover it.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::TruthTable;
    use dalut_core::{ApproxLutBuilder, BsSaParams};

    fn sample_config() -> ApproxLutConfig {
        let target = TruthTable::from_fn(6, 3, |x| (x * 3) >> 3 & 0x7).unwrap();
        ApproxLutBuilder::new(&target)
            .bs_sa(BsSaParams::fast())
            .run()
            .unwrap()
            .config
    }

    #[test]
    fn second_build_is_a_hit_and_shares_the_instance() {
        let cache = InstanceCache::new();
        let config = sample_config();
        let a = cache.get_or_build(&config, ArchStyle::BtoNormal).unwrap();
        let b = cache.get_or_build(&config, ArchStyle::BtoNormal).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn styles_key_separately() {
        let cache = InstanceCache::new();
        let config = sample_config();
        let bn = cache.get_or_build(&config, ArchStyle::BtoNormal).unwrap();
        let dalta = cache.get_or_build(&config, ArchStyle::Dalta);
        // DALTA may reject BTO/ND modes; when it builds it must be a
        // distinct entry.
        if let Ok(dalta) = dalta {
            assert!(!Arc::ptr_eq(&bn, &dalta));
            assert_eq!(cache.len(), 2);
        }
        assert_ne!(
            InstanceCache::config_fingerprint(&config, ArchStyle::BtoNormal),
            InstanceCache::config_fingerprint(&config, ArchStyle::Dalta),
        );
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = InstanceCache::new();
        let config = sample_config();
        let (bto, _, nd) = config.mode_counts();
        if bto + nd > 0 {
            // DALTA supports only Normal bits, so this config fails.
            assert!(cache.get_or_build(&config, ArchStyle::Dalta).is_err());
            assert_eq!(cache.len(), 0);
            assert_eq!(cache.misses(), 0);
        }
    }
}
