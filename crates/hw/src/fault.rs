//! Fault injection into the stored bits of a built architecture.
//!
//! The DFF presets of an [`ArchInstance`] are its configuration memory:
//! the bound/free sub-tables and per-bit configuration bits the search
//! produced. This module corrupts copies of those stored bits under
//! three classic fault models — single-event upsets, stuck-at faults and
//! burst upsets — and measures how gracefully each architecture degrades
//! relative to its own fault-free behaviour, exhaustively over the full
//! input space.
//!
//! Campaigns are deterministic from an explicit seed, so a sweep is
//! reproducible bit-for-bit run to run.
//!
//! ```
//! use dalut_boolfn::TruthTable;
//! use dalut_hw::{build_round_out, fault_report, FaultModel};
//!
//! let g = TruthTable::from_fn(6, 3, |x| (x >> 2) & 7).unwrap();
//! let inst = build_round_out(&g, 1);
//! let rep = fault_report(&inst, &FaultModel::Seu { probability: 0.01 }, 8, 42).unwrap();
//! assert_eq!(rep.trials, 8);
//! assert!(rep.error_rate <= 1.0);
//! ```

use crate::arch::HwError;
use crate::instance::ArchInstance;
use crate::simopt::default_sim_options;
use dalut_core::{NoopObserver, Observer, SearchEvent};
use dalut_netlist::{CompiledNetlist, NetId, SimBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Exhaustive evaluation reads every input word, so campaigns are capped
/// at this input width (2^20 reads per trial).
const MAX_EXHAUSTIVE_INPUTS: usize = 20;

/// How stored bits get corrupted in one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// Single-event upsets: every stored bit flips independently with the
    /// given probability.
    Seu {
        /// Per-bit flip probability in `[0, 1]`.
        probability: f64,
    },
    /// Stuck-at faults: every stored bit is independently forced to
    /// `value` with the given probability (bits already at `value` are
    /// hit but unchanged).
    StuckAt {
        /// Per-bit fault probability in `[0, 1]`.
        probability: f64,
        /// The level faulty bits are stuck at.
        value: bool,
    },
    /// Burst upsets: at each stored-bit position a burst starts with the
    /// given probability and flips the next `length` bits; bursts do not
    /// overlap.
    Burst {
        /// Per-position burst-start probability in `[0, 1]`.
        probability: f64,
        /// Number of consecutive bits one burst flips (at least 1).
        length: usize,
    },
    /// Transient (intermittent) upsets: every stored bit flips
    /// independently with the given probability, but the corruption
    /// self-clears after `duration` reads — the fault appears, persists
    /// for `duration` cycles of the trial, then the affected DFFs revert
    /// to their stored values. Reads after the window see the fault-free
    /// instance, so campaign error figures measure *recovery*, diluted
    /// over the full exhaustive read sequence.
    Transient {
        /// Per-bit flip probability in `[0, 1]`.
        probability: f64,
        /// Reads the corruption persists for before clearing (at
        /// least 1).
        duration: u64,
    },
}

impl FaultModel {
    /// Short name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Seu { .. } => "seu",
            Self::StuckAt { .. } => "stuck-at",
            Self::Burst { .. } => "burst",
            Self::Transient { .. } => "transient",
        }
    }

    /// The model's event probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        match *self {
            Self::Seu { probability }
            | Self::StuckAt { probability, .. }
            | Self::Burst { probability, .. }
            | Self::Transient { probability, .. } => probability,
        }
    }

    /// How many reads of a trial the corruption persists for: `None`
    /// means it lasts the whole trial (only [`FaultModel::Transient`]
    /// clears early).
    #[must_use]
    pub fn persistence(&self) -> Option<u64> {
        match *self {
            Self::Transient { duration, .. } => Some(duration),
            _ => None,
        }
    }

    /// Checks the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFaultModel`] if the probability is not a
    /// finite value in `[0, 1]`, or a burst has length zero.
    pub fn validate(&self) -> Result<(), HwError> {
        let p = self.probability();
        if !(0.0..=1.0).contains(&p) {
            return Err(HwError::InvalidFaultModel {
                detail: format!("{} probability {p} is not in [0, 1]", self.name()),
            });
        }
        if let Self::Burst { length: 0, .. } = self {
            return Err(HwError::InvalidFaultModel {
                detail: "burst length must be at least 1".to_string(),
            });
        }
        if let Self::Transient { duration: 0, .. } = self {
            return Err(HwError::InvalidFaultModel {
                detail: "transient duration must be at least 1 read".to_string(),
            });
        }
        Ok(())
    }

    /// Corrupts `stored` in place, drawing from `rng`, and returns the
    /// number of bits whose value actually changed. One draw per stored
    /// bit (or per burst-free position), so equal seeds give equal
    /// damage regardless of outcome.
    pub fn apply(&self, stored: &mut [(NetId, bool)], rng: &mut StdRng) -> usize {
        let mut changed = 0;
        match *self {
            Self::Seu { probability } | Self::Transient { probability, .. } => {
                for (_, v) in stored.iter_mut() {
                    if rng.random_bool(probability) {
                        *v = !*v;
                        changed += 1;
                    }
                }
            }
            Self::StuckAt { probability, value } => {
                for (_, v) in stored.iter_mut() {
                    if rng.random_bool(probability) && *v != value {
                        *v = value;
                        changed += 1;
                    }
                }
            }
            Self::Burst {
                probability,
                length,
            } => {
                let mut i = 0;
                while i < stored.len() {
                    if rng.random_bool(probability) {
                        let end = (i + length).min(stored.len());
                        for (_, v) in &mut stored[i..end] {
                            *v = !*v;
                        }
                        changed += end - i;
                        i = end;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        changed
    }
}

/// Degradation of one instance under one fault model, aggregated over a
/// campaign of independent trials and the full input space.
///
/// All error figures compare the damaged instance against its own
/// fault-free outputs, so the report isolates the *additional* error the
/// faults cause on top of the approximation error the search accepted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Fault-model name ([`FaultModel::name`]).
    pub model: String,
    /// The model's event probability.
    pub probability: f64,
    /// Number of independent corruption trials.
    pub trials: usize,
    /// Size of the fault surface: stored bits per instance.
    pub stored_bits: usize,
    /// Total stored bits changed across all trials.
    pub flipped_bits: usize,
    /// Fraction of reads (over all trials × all inputs) whose output
    /// differs from the fault-free instance.
    pub error_rate: f64,
    /// Mean absolute error distance versus the fault-free instance.
    pub med: f64,
    /// Worst absolute error distance observed in any read.
    pub max_ed: u32,
    /// Reads per trial evaluated while the fault was active: present
    /// only for self-clearing models ([`FaultModel::Transient`]), where
    /// reads after the window revert to fault-free behaviour. Additive
    /// schema field — absent for persistent models.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faulty_reads: Option<u64>,
}

/// A prepared fault campaign against one instance.
///
/// Construction computes the fault-free ("golden") exhaustive outputs
/// once on the process-default simulation backend; every subsequent
/// [`report`](Self::report) — across fault models *and* probabilities —
/// reuses them, so a sweep pays for the baseline exactly once per
/// architecture instead of once per campaign.
#[derive(Debug)]
pub struct FaultCampaign<'a> {
    inst: &'a ArchInstance,
    golden: Vec<u32>,
    /// The exhaustive address sequence `0..2^n`, packed into lane blocks
    /// once at construction.
    addresses: Vec<u32>,
    /// The lowered netlist, compiled once and reused by every trial.
    compiled: CompiledNetlist,
    /// The engine the campaign runs on: the process-default backend,
    /// resolved at construction (`Scalar` routes every trial through
    /// the scalar reference engine).
    backend: SimBackend,
}

impl<'a> FaultCampaign<'a> {
    /// Prepares a campaign: validates the instance width and computes the
    /// fault-free baseline.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFaultModel`] if the instance is too wide
    /// to evaluate exhaustively (more than 20 inputs), and
    /// [`HwError::Netlist`] if the netlist cannot be simulated.
    pub fn new(inst: &'a ArchInstance) -> Result<Self, HwError> {
        if inst.inputs() > MAX_EXHAUSTIVE_INPUTS {
            return Err(HwError::InvalidFaultModel {
                detail: format!(
                    "exhaustive evaluation is capped at {MAX_EXHAUSTIVE_INPUTS} inputs (instance has {})",
                    inst.inputs()
                ),
            });
        }
        let words = 1u32 << inst.inputs();
        let addresses: Vec<u32> = (0..words).collect();
        let compiled = inst.compile()?;
        let backend = default_sim_options().backend.resolve();
        let golden = if backend == SimBackend::Scalar {
            let mut sim = inst.simulator()?;
            addresses.iter().map(|&x| inst.read(&mut sim, x)).collect()
        } else {
            let mut sim = inst.wide_simulator(&compiled, backend)?;
            let lanes = sim.lanes_per_block();
            let mut golden = vec![0u32; words as usize];
            for (block_in, block_out) in addresses.chunks(lanes).zip(golden.chunks_mut(lanes)) {
                inst.read_block_wide(&mut sim, block_in, block_out)?;
            }
            golden
        };
        Ok(Self {
            inst,
            golden,
            addresses,
            compiled,
            backend,
        })
    }

    /// The fault-free exhaustive outputs, indexed by input word.
    pub fn golden(&self) -> &[u32] {
        &self.golden
    }

    /// Runs one campaign: `trials` independent corruptions of the stored
    /// bits under `model`, each evaluated exhaustively on the
    /// campaign's backend against the hoisted baseline.
    ///
    /// Deterministic in `seed`: equal arguments give an identical report,
    /// bit-identical to the scalar engine's.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFaultModel`] for bad model parameters or
    /// zero trials, and [`HwError::Netlist`] if the netlist cannot be
    /// simulated.
    pub fn report(
        &self,
        model: &FaultModel,
        trials: usize,
        seed: u64,
    ) -> Result<FaultReport, HwError> {
        self.report_observed(model, trials, seed, &NoopObserver)
    }

    /// [`report`](Self::report) with an [`Observer`]: emits one
    /// [`SearchEvent::SimBatch`] summarising the corrupted-trial blocks.
    ///
    /// # Errors
    ///
    /// As [`report`](Self::report).
    pub fn report_observed(
        &self,
        model: &FaultModel,
        trials: usize,
        seed: u64,
        observer: &dyn Observer,
    ) -> Result<FaultReport, HwError> {
        model.validate()?;
        if trials == 0 {
            return Err(HwError::InvalidFaultModel {
                detail: "a campaign needs at least one trial".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let words = self.golden.len() as u64;
        // Self-clearing models only corrupt the first `active` reads of a
        // trial; everything after reverts to the golden outputs, so those
        // reads need no simulation at all (they count in the denominator).
        let active = model.persistence().map_or(words, |d| d.min(words));
        let mut flipped_bits = 0usize;
        let mut wrong = 0u64;
        let mut sum_ed = 0.0f64;
        let mut max_ed = 0u32;
        let mut blocks = 0u64;
        let lanes = if self.backend == SimBackend::Scalar {
            1
        } else {
            self.backend.lanes()
        };
        let mut outs = vec![0u32; lanes];
        for _ in 0..trials {
            let mut stored = self.inst.presets().to_vec();
            flipped_bits += model.apply(&mut stored, &mut rng);
            let mut scalar_sim = if self.backend == SimBackend::Scalar {
                Some(self.inst.simulator_with_presets(&stored)?)
            } else {
                None
            };
            let mut wide_sim = if self.backend == SimBackend::Scalar {
                None
            } else {
                Some(self.inst.wide_simulator_with_presets(
                    &self.compiled,
                    self.backend,
                    &stored,
                )?)
            };
            let mut base = 0u64;
            for (block_in, golden) in self.addresses.chunks(lanes).zip(self.golden.chunks(lanes)) {
                if base >= active {
                    break;
                }
                let outs = &mut outs[..block_in.len()];
                match (&mut scalar_sim, &mut wide_sim) {
                    (Some(sim), _) => {
                        for (slot, &x) in outs.iter_mut().zip(block_in) {
                            *slot = self.inst.read(sim, x);
                        }
                    }
                    (None, Some(sim)) => self.inst.read_block_wide(sim, block_in, outs)?,
                    (None, None) => unreachable!("one engine is always constructed"),
                }
                blocks += 1;
                for (lane, (&y, &g)) in outs.iter().zip(golden).enumerate() {
                    if base + lane as u64 >= active {
                        break;
                    }
                    if y != g {
                        wrong += 1;
                        let ed = g.abs_diff(y);
                        sum_ed += f64::from(ed);
                        max_ed = max_ed.max(ed);
                    }
                }
                base += block_in.len() as u64;
            }
        }
        let reads = words * trials as u64;
        if observer.enabled() {
            observer.on_event(&SearchEvent::SimBatch {
                engine: self.backend.to_string(),
                cycles: reads,
                blocks,
            });
        }
        Ok(FaultReport {
            model: model.name().to_string(),
            probability: model.probability(),
            trials,
            stored_bits: self.inst.presets().len(),
            flipped_bits,
            error_rate: wrong as f64 / reads as f64,
            med: sum_ed / reads as f64,
            max_ed,
            faulty_reads: model.persistence().map(|_| active),
        })
    }
}

/// Runs a fault campaign: `trials` independent corruptions of the
/// instance's stored bits under `model`, each evaluated exhaustively
/// against the fault-free instance.
///
/// One-shot convenience over [`FaultCampaign`] — sweeps running several
/// models or probabilities against the same instance should construct
/// the campaign once and call [`FaultCampaign::report`] per point.
///
/// Deterministic in `seed`: equal arguments give an identical report.
///
/// # Errors
///
/// Returns [`HwError::InvalidFaultModel`] for bad model parameters, zero
/// trials, or an instance too wide to evaluate exhaustively (more than
/// 20 inputs), and [`HwError::Netlist`] if the netlist cannot be
/// simulated.
pub fn fault_report(
    inst: &ArchInstance,
    model: &FaultModel,
    trials: usize,
    seed: u64,
) -> Result<FaultReport, HwError> {
    // Validate cheap arguments before paying for the baseline, keeping
    // the historical error precedence.
    model.validate()?;
    if trials == 0 {
        return Err(HwError::InvalidFaultModel {
            detail: "a campaign needs at least one trial".to_string(),
        });
    }
    FaultCampaign::new(inst)?.report(model, trials, seed)
}

/// The scalar one-cycle-at-a-time reference for [`fault_report`],
/// retained for differential testing of the batched fault path.
///
/// # Errors
///
/// As [`fault_report`].
pub fn fault_report_scalar(
    inst: &ArchInstance,
    model: &FaultModel,
    trials: usize,
    seed: u64,
) -> Result<FaultReport, HwError> {
    model.validate()?;
    if trials == 0 {
        return Err(HwError::InvalidFaultModel {
            detail: "a campaign needs at least one trial".to_string(),
        });
    }
    if inst.inputs() > MAX_EXHAUSTIVE_INPUTS {
        return Err(HwError::InvalidFaultModel {
            detail: format!(
                "exhaustive evaluation is capped at {MAX_EXHAUSTIVE_INPUTS} inputs (instance has {})",
                inst.inputs()
            ),
        });
    }

    let words = 1u32 << inst.inputs();
    let mut sim = inst.simulator()?;
    let golden: Vec<u32> = (0..words).map(|x| inst.read(&mut sim, x)).collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let active = model
        .persistence()
        .map_or(u64::from(words), |d| d.min(u64::from(words)));
    let mut flipped_bits = 0usize;
    let mut wrong = 0u64;
    let mut sum_ed = 0.0f64;
    let mut max_ed = 0u32;
    for _ in 0..trials {
        let mut stored = inst.presets().to_vec();
        flipped_bits += model.apply(&mut stored, &mut rng);
        let mut sim = inst.simulator_with_presets(&stored)?;
        for (x, &g) in golden.iter().enumerate().take(active as usize) {
            let y = inst.read(&mut sim, x as u32);
            if y != g {
                wrong += 1;
                let ed = g.abs_diff(y);
                sum_ed += f64::from(ed);
                max_ed = max_ed.max(ed);
            }
        }
    }

    let reads = u64::from(words) * trials as u64;
    Ok(FaultReport {
        model: model.name().to_string(),
        probability: model.probability(),
        trials,
        stored_bits: inst.presets().len(),
        flipped_bits,
        error_rate: wrong as f64 / reads as f64,
        med: sum_ed / reads as f64,
        max_ed,
        faulty_reads: model.persistence().map(|_| active),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounding::build_round_out;
    use dalut_boolfn::TruthTable;

    fn inst() -> ArchInstance {
        let g = TruthTable::from_fn(6, 3, |x| (x.wrapping_mul(5) >> 2) & 7).unwrap();
        build_round_out(&g, 1)
    }

    #[test]
    fn zero_probability_is_fault_free() {
        let inst = inst();
        let rep = fault_report(&inst, &FaultModel::Seu { probability: 0.0 }, 4, 1).unwrap();
        assert_eq!(rep.flipped_bits, 0);
        assert_eq!(rep.error_rate, 0.0);
        assert_eq!(rep.med, 0.0);
        assert_eq!(rep.max_ed, 0);
        assert_eq!(rep.stored_bits, inst.presets().len());
    }

    #[test]
    fn certain_upset_flips_every_stored_bit() {
        let inst = inst();
        let rep = fault_report(&inst, &FaultModel::Seu { probability: 1.0 }, 3, 1).unwrap();
        assert_eq!(rep.flipped_bits, 3 * inst.presets().len());
        // Complementing the whole ROM complements every read.
        assert!(rep.error_rate > 0.99, "error_rate = {}", rep.error_rate);
        assert!(rep.med > 0.0);
    }

    #[test]
    fn stuck_at_forces_bits_and_counts_only_changes() {
        let inst = inst();
        let ones = inst.presets().iter().filter(|&&(_, v)| v).count();
        let mut stored = inst.presets().to_vec();
        let mut rng = StdRng::seed_from_u64(9);
        let changed = FaultModel::StuckAt {
            probability: 1.0,
            value: false,
        }
        .apply(&mut stored, &mut rng);
        assert_eq!(changed, ones);
        assert!(stored.iter().all(|&(_, v)| !v));
    }

    #[test]
    fn certain_burst_flips_the_whole_surface() {
        let inst = inst();
        let mut stored = inst.presets().to_vec();
        let original: Vec<bool> = stored.iter().map(|&(_, v)| v).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let changed = FaultModel::Burst {
            probability: 1.0,
            length: 3,
        }
        .apply(&mut stored, &mut rng);
        assert_eq!(changed, stored.len());
        for (&(_, v), o) in stored.iter().zip(original) {
            assert_eq!(v, !o);
        }
    }

    #[test]
    fn campaigns_are_deterministic_in_the_seed() {
        let inst = inst();
        let model = FaultModel::Seu { probability: 0.05 };
        let a = fault_report(&inst, &model, 6, 7).unwrap();
        let b = fault_report(&inst, &model, 6, 7).unwrap();
        assert_eq!(a, b);
        // A different seed samples different damage: at p = 1/2 two
        // seeds agreeing on the whole surface has probability 2^-128.
        let coin = FaultModel::Seu { probability: 0.5 };
        let (mut s1, mut s2) = (inst.presets().to_vec(), inst.presets().to_vec());
        coin.apply(&mut s1, &mut StdRng::seed_from_u64(7));
        coin.apply(&mut s2, &mut StdRng::seed_from_u64(8));
        assert_ne!(s1, s2);
    }

    #[test]
    fn invalid_models_are_rejected() {
        let inst = inst();
        for model in [
            FaultModel::Seu { probability: 1.5 },
            FaultModel::Seu {
                probability: f64::NAN,
            },
            FaultModel::StuckAt {
                probability: -0.1,
                value: true,
            },
            FaultModel::Burst {
                probability: 0.1,
                length: 0,
            },
            FaultModel::Transient {
                probability: 0.1,
                duration: 0,
            },
        ] {
            assert!(matches!(
                fault_report(&inst, &model, 1, 0),
                Err(HwError::InvalidFaultModel { .. })
            ));
        }
        assert!(matches!(
            fault_report(&inst, &FaultModel::Seu { probability: 0.1 }, 0, 0),
            Err(HwError::InvalidFaultModel { .. })
        ));
    }

    #[test]
    fn batched_campaign_matches_scalar_reference_bit_for_bit() {
        let inst = inst();
        for model in [
            FaultModel::Seu { probability: 0.05 },
            FaultModel::StuckAt {
                probability: 0.1,
                value: true,
            },
            FaultModel::Burst {
                probability: 0.05,
                length: 3,
            },
            FaultModel::Transient {
                probability: 0.2,
                duration: 7,
            },
            FaultModel::Transient {
                probability: 0.2,
                duration: 64,
            },
            FaultModel::Transient {
                probability: 0.2,
                duration: 65,
            },
        ] {
            let fast = fault_report(&inst, &model, 5, 42).unwrap();
            let slow = fault_report_scalar(&inst, &model, 5, 42).unwrap();
            assert_eq!(fast, slow, "batched vs scalar diverged for {model:?}");
        }
    }

    #[test]
    fn transient_fault_clears_after_its_window() {
        let inst = inst();
        let words = 1u64 << inst.inputs();
        // A whole-trial transient behaves exactly like an SEU of the same
        // probability and seed — only the report labelling differs.
        let seu = fault_report(&inst, &FaultModel::Seu { probability: 0.3 }, 4, 11).unwrap();
        let full = fault_report(
            &inst,
            &FaultModel::Transient {
                probability: 0.3,
                duration: words,
            },
            4,
            11,
        )
        .unwrap();
        assert_eq!(full.model, "transient");
        assert_eq!(full.faulty_reads, Some(words));
        assert_eq!(seu.faulty_reads, None);
        assert_eq!(
            (full.error_rate, full.med, full.max_ed),
            (seu.error_rate, seu.med, seu.max_ed)
        );
        // A short window dilutes the damage: errors can only come from
        // the first `duration` reads of each trial.
        let short = fault_report(
            &inst,
            &FaultModel::Transient {
                probability: 0.3,
                duration: 3,
            },
            4,
            11,
        )
        .unwrap();
        assert_eq!(short.faulty_reads, Some(3));
        assert_eq!(short.flipped_bits, full.flipped_bits);
        assert!(short.error_rate <= 4.0 * 3.0 / (words as f64 * 4.0));
        assert!(short.med <= full.med);
    }

    #[test]
    fn hoisted_campaign_equals_fresh_reports() {
        let inst = inst();
        let campaign = FaultCampaign::new(&inst).unwrap();
        for p in [0.02, 0.2] {
            let model = FaultModel::Seu { probability: p };
            assert_eq!(
                campaign.report(&model, 4, 9).unwrap(),
                fault_report(&inst, &model, 4, 9).unwrap()
            );
        }
    }

    #[test]
    fn heavier_upset_rates_degrade_more() {
        let inst = inst();
        let light = fault_report(&inst, &FaultModel::Seu { probability: 0.01 }, 8, 5).unwrap();
        let heavy = fault_report(&inst, &FaultModel::Seu { probability: 0.3 }, 8, 5).unwrap();
        assert!(heavy.flipped_bits > light.flipped_bits);
        assert!(heavy.error_rate >= light.error_rate);
    }
}
