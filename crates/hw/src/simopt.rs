//! Process-wide simulation options for the sign-off path.
//!
//! Harness binaries parse `--sim-backend` (and `--threads`) once and
//! install the result here with [`set_default_sim_options`]; every
//! measurement that doesn't take explicit options —
//! [`characterize`](crate::characterize), fault campaigns, the runtime
//! controller's error monitors — picks the process default up via
//! [`default_sim_options`]. This threads the backend choice through
//! the whole call graph without widening a dozen signatures, while
//! [`ArchInstance::measure_with`](crate::ArchInstance::measure_with)
//! remains the explicit entry point for callers that need per-call
//! control.
//!
//! Every backend is bit-identical (the differential equivalence suites
//! are the gate), so the options only ever change speed, never any
//! measured number.

use dalut_netlist::SimBackend;
use std::sync::Mutex;

/// Stimulus cycles per independent chunk when the block-parallel path
/// runs. Fixed — never derived from the thread count — so the chunk
/// boundaries, and therefore the exact stitched toggle sums, are
/// identical at any parallelism level.
pub const CHUNK_CYCLES: usize = 4096;

/// How the sign-off simulations should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Engine choice (`Auto` resolves per CPU; see
    /// [`SimBackend::resolve`]).
    pub backend: SimBackend,
    /// Worker threads for block-parallel stimulus. `1` disables
    /// chunking entirely; higher values only take effect on
    /// chunk-parallel-safe netlists with enough stimulus (at least two
    /// chunks of [`CHUNK_CYCLES`]).
    pub threads: usize,
    /// Cycles per chunk for the block-parallel path.
    pub chunk_cycles: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            backend: SimBackend::Auto,
            threads: 1,
            chunk_cycles: CHUNK_CYCLES,
        }
    }
}

static DEFAULT: Mutex<SimOptions> = Mutex::new(SimOptions {
    backend: SimBackend::Auto,
    threads: 1,
    chunk_cycles: CHUNK_CYCLES,
});

/// Installs the process-wide default simulation options (called once
/// by harness binaries after argument parsing).
pub fn set_default_sim_options(opts: SimOptions) {
    *DEFAULT.lock().unwrap_or_else(|e| e.into_inner()) = opts;
}

/// The current process-wide default simulation options.
#[must_use]
pub fn default_sim_options() -> SimOptions {
    *DEFAULT.lock().unwrap_or_else(|e| e.into_inner())
}
