//! The routing box: statically configured input permutation
//! (paper Fig. 1(b)).
//!
//! Hardware-wise each routed output is an `n`-to-1 mux tree whose select
//! lines are tied to configuration constants, so the box costs real area
//! and (input-driven) switching power but routes statically — matching
//! the paper's reconfigurable-but-statically-programmed routing box.

use dalut_netlist::{NetId, Netlist};

/// Builds a routing box: `result[j] = inputs[perm[j]]`.
///
/// # Panics
///
/// Panics if `perm` references an input out of range or `inputs` is
/// empty.
pub fn routing_box(nl: &mut Netlist, inputs: &[NetId], perm: &[usize]) -> Vec<NetId> {
    assert!(!inputs.is_empty(), "routing box needs inputs");
    let n = inputs.len();
    let sel_bits = n.next_power_of_two().trailing_zeros() as usize;
    // Pad the leaf set to a power of two with input 0 (never selected).
    let mut leaves: Vec<NetId> = inputs.to_vec();
    leaves.resize(1 << sel_bits, inputs[0]);

    perm.iter()
        .map(|&src| {
            assert!(src < n, "permutation references input {src} of {n}");
            let sel: Vec<NetId> = (0..sel_bits)
                .map(|b| nl.constant((src >> b) & 1 == 1))
                .collect();
            nl.mux_tree(&leaves, &sel)
        })
        .collect()
}

/// The permutation an architecture uses to route the bound set to the low
/// positions `x'_1..x'_b` and the free set above them, both in ascending
/// variable order: `perm[j]` is the source variable of routed position
/// `j`.
pub fn bound_first_permutation(partition: dalut_boolfn::Partition) -> Vec<usize> {
    let mut perm: Vec<usize> = partition.bound_vars().iter().map(|&v| v as usize).collect();
    perm.extend(partition.free_vars().iter().map(|&v| v as usize));
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::Partition;
    use dalut_netlist::Simulator;

    fn route(n: usize, perm: &[usize], word: u64) -> u64 {
        let mut nl = Netlist::new("route");
        let ins = nl.input_bus("x", n);
        let outs = routing_box(&mut nl, &ins, perm);
        for (j, o) in outs.iter().enumerate() {
            nl.output(format!("y[{j}]"), *o);
        }
        let mut sim = Simulator::new(&nl).unwrap();
        sim.eval_word(word)
    }

    #[test]
    fn identity_permutation_passes_through() {
        let perm: Vec<usize> = (0..5).collect();
        for w in [0u64, 0b10110, 0b11111] {
            assert_eq!(route(5, &perm, w), w);
        }
    }

    #[test]
    fn reversal_permutation_reverses_bits() {
        let perm: Vec<usize> = (0..4).rev().collect();
        assert_eq!(route(4, &perm, 0b0001), 0b1000);
        assert_eq!(route(4, &perm, 0b0011), 0b1100);
    }

    #[test]
    fn non_power_of_two_width_works() {
        // 6 inputs -> leaves padded to 8.
        let perm = [5usize, 4, 3, 2, 1, 0];
        assert_eq!(route(6, &perm, 0b000001), 0b100000);
        assert_eq!(route(6, &perm, 0b101010), 0b010101);
    }

    #[test]
    fn bound_first_permutation_layout() {
        // n = 6, B = {x1, x4}, A = {x0, x2, x3, x5}.
        let p = Partition::new(6, 0b010010).unwrap();
        let perm = bound_first_permutation(p);
        assert_eq!(perm, vec![1, 4, 0, 2, 3, 5]);
    }

    #[test]
    fn routed_bound_projection_matches_col_of() {
        let p = Partition::new(6, 0b011001).unwrap();
        let perm = bound_first_permutation(p);
        for x in [0u64, 0b101101, 0b010110, 0b111111] {
            let routed = route(6, &perm, x);
            let col = u64::from(p.col_of(x as u32));
            assert_eq!(routed & 0b111, col, "x={x:06b}");
            let row = u64::from(p.row_of(x as u32));
            assert_eq!(routed >> 3, row);
        }
    }
}
