//! Netlist builders for the three decomposition-based architectures:
//! DALTA's rigid approximate single-output LUT (Fig. 1(b)), the
//! reconfigurable BTO-Normal (Fig. 2(b)), and BTO-Normal-ND (Fig. 4).

use crate::instance::ArchInstance;
use crate::lut::{dff_lut, gate_address};
use crate::routing::{bound_first_permutation, routing_box};
use dalut_core::{ApproxLutConfig, BitMode};
use dalut_decomp::AnyDecomp;
use dalut_netlist::{DomainId, NetId, Netlist, ROOT_DOMAIN};
use std::fmt;

/// Which hardware architecture realises a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchStyle {
    /// DALTA's fixed architecture: bound + free table, both always on.
    Dalta,
    /// BTO-Normal: one free table per bit, clock-gated in BTO mode.
    BtoNormal,
    /// BTO-Normal-ND: two free tables per bit, gated per mode.
    BtoNormalNd,
}

impl ArchStyle {
    /// Display name used in reports (matches the paper's Fig. 5 labels).
    pub fn name(self) -> &'static str {
        match self {
            Self::Dalta => "DALTA",
            Self::BtoNormal => "BTO-Normal",
            Self::BtoNormalNd => "BTO-Normal-ND",
        }
    }

    /// True if this architecture can realise the given operating mode.
    pub fn supports(self, mode: BitMode) -> bool {
        match self {
            Self::Dalta => mode == BitMode::Normal,
            Self::BtoNormal => mode != BitMode::NonDisjoint,
            Self::BtoNormalNd => true,
        }
    }
}

/// Errors raised when mapping a configuration onto an architecture or
/// injecting faults into a built instance.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// The configuration uses a mode the architecture cannot realise.
    UnsupportedMode {
        /// The architecture style.
        style: &'static str,
        /// The offending output bit.
        bit: usize,
        /// The mode that bit requires.
        mode: &'static str,
    },
    /// A fault-injection model or campaign has invalid parameters.
    InvalidFaultModel {
        /// What is wrong with the parameters.
        detail: String,
    },
    /// The underlying netlist rejected the instance (e.g. a
    /// combinational cycle found when building a simulator).
    Netlist(dalut_netlist::NetlistError),
    /// A runtime rewrite addressed an output bit for which the instance
    /// records no bound-table layout (the bit is out of range, or the
    /// instance is a rounding baseline / hardened netlist without
    /// rewritable tables).
    NoBoundTable {
        /// The output bit addressed.
        bit: usize,
    },
    /// A runtime rewrite supplied contents whose length does not match
    /// the table being written.
    TableShape {
        /// Entries the table holds.
        expected: usize,
        /// Entries the caller supplied.
        got: usize,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedMode { style, bit, mode } => write!(
                f,
                "architecture {style} cannot realise {mode} mode (output bit {bit})"
            ),
            Self::InvalidFaultModel { detail } => {
                write!(f, "invalid fault model: {detail}")
            }
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
            Self::NoBoundTable { bit } => {
                write!(f, "no rewritable bound table recorded for output bit {bit}")
            }
            Self::TableShape { expected, got } => {
                write!(f, "table holds {expected} entries but {got} were supplied")
            }
        }
    }
}

impl std::error::Error for HwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dalut_netlist::NetlistError> for HwError {
    fn from(e: dalut_netlist::NetlistError) -> Self {
        Self::Netlist(e)
    }
}

/// Result of building one output bit: its net plus bookkeeping. Every
/// builder pushes the bound-table presets first, so `bound_len` prefix
/// entries of `presets` are the bit's rewritable bound table.
struct BitBlock {
    y: NetId,
    presets: Vec<(NetId, bool)>,
    disabled: Vec<DomainId>,
    bound_len: usize,
}

fn mode_name(d: &AnyDecomp) -> &'static str {
    d.mode_name()
}

/// DALTA per-bit block: routing box + bound table + free table, all in
/// the root clock domain (nothing can be gated).
fn dalta_bit(
    nl: &mut Netlist,
    x: &[NetId],
    decomp: &AnyDecomp,
    bit: usize,
) -> Result<BitBlock, HwError> {
    let AnyDecomp::Normal(d) = decomp else {
        return Err(HwError::UnsupportedMode {
            style: ArchStyle::Dalta.name(),
            bit,
            mode: mode_name(decomp),
        });
    };
    let part = d.partition();
    let b = part.bound_size();
    let routed = routing_box(nl, x, &bound_first_permutation(part));
    let bound = dff_lut(nl, d.bound_table(), &routed[..b], ROOT_DOMAIN);
    let mut free_addr = vec![bound.output];
    free_addr.extend_from_slice(&routed[b..]);
    let free = dff_lut(nl, &d.free_table(), &free_addr, ROOT_DOMAIN);
    let mut presets = bound.presets;
    let bound_len = presets.len();
    presets.extend(free.presets);
    Ok(BitBlock {
        y: free.output,
        presets,
        disabled: Vec::new(),
        bound_len,
    })
}

/// BTO-Normal per-bit block (Fig. 2(b)): the free table lives in its own
/// clock domain and its address is enable-gated; a mux driven by the
/// (statically configured) `mode` signal picks `φ` or the free-table
/// output.
fn bto_normal_bit(
    nl: &mut Netlist,
    x: &[NetId],
    decomp: &AnyDecomp,
    bit: usize,
) -> Result<BitBlock, HwError> {
    let (part, pattern, free_contents, is_bto) = match decomp {
        AnyDecomp::Normal(d) => (d.partition(), d.pattern().to_vec(), d.free_table(), false),
        AnyDecomp::Bto(d) => {
            let rows = d.partition().rows();
            (
                d.partition(),
                d.pattern().to_vec(),
                vec![false; rows * 2],
                true,
            )
        }
        AnyDecomp::NonDisjoint(_) => {
            return Err(HwError::UnsupportedMode {
                style: ArchStyle::BtoNormal.name(),
                bit,
                mode: mode_name(decomp),
            })
        }
    };
    let b = part.bound_size();
    let routed = routing_box(nl, x, &bound_first_permutation(part));
    let bound = dff_lut(nl, &pattern, &routed[..b], ROOT_DOMAIN);

    let mode = nl.constant(!is_bto);
    let free_domain = nl.add_domain(format!("free{bit}"));
    let mut free_addr = vec![bound.output];
    free_addr.extend_from_slice(&routed[b..]);
    let gated_addr = gate_address(nl, &free_addr, mode);
    let free = dff_lut(nl, &free_contents, &gated_addr, free_domain);
    let y = nl.mux2(bound.output, free.output, mode);

    let mut presets = bound.presets;
    let bound_len = presets.len();
    presets.extend(free.presets);
    Ok(BitBlock {
        y,
        presets,
        disabled: if is_bto {
            vec![free_domain]
        } else {
            Vec::new()
        },
        bound_len,
    })
}

/// BTO-Normal-ND per-bit block (Fig. 4): two free tables, two mode
/// signals. `(mode2, mode1) = (0,0)` → BTO, `(0,1)` → normal, `(1,1)` →
/// non-disjoint (free-table outputs muxed by the shared bit `x_s`).
fn bto_normal_nd_bit(
    nl: &mut Netlist,
    x: &[NetId],
    decomp: &AnyDecomp,
    bit: usize,
) -> Result<BitBlock, HwError> {
    // Decode the configuration into table contents and mode constants.
    let (part, bound_contents, f0, f1, mode1v, mode2v, shared) = match decomp {
        AnyDecomp::Bto(d) => {
            let rows2 = d.partition().rows() * 2;
            (
                d.partition(),
                d.pattern().to_vec(),
                vec![false; rows2],
                vec![false; rows2],
                false,
                false,
                None,
            )
        }
        AnyDecomp::Normal(d) => {
            let rows2 = d.partition().rows() * 2;
            (
                d.partition(),
                d.pattern().to_vec(),
                d.free_table(),
                vec![false; rows2],
                true,
                false,
                None,
            )
        }
        AnyDecomp::NonDisjoint(d) => (
            d.partition(),
            d.bound_table(),
            d.free_table0(),
            d.free_table1(),
            true,
            true,
            Some(d.shared()),
        ),
    };
    let b = part.bound_size();
    let routed = routing_box(nl, x, &bound_first_permutation(part));
    let bound = dff_lut(nl, &bound_contents, &routed[..b], ROOT_DOMAIN);

    let mode1 = nl.constant(mode1v);
    let mode2 = nl.constant(mode2v);
    let dom0 = nl.add_domain(format!("free0_{bit}"));
    let dom1 = nl.add_domain(format!("free1_{bit}"));

    let mut free_addr = vec![bound.output];
    free_addr.extend_from_slice(&routed[b..]);
    let addr0 = gate_address(nl, &free_addr, mode1);
    let addr1 = gate_address(nl, &free_addr, mode2);
    let lut0 = dff_lut(nl, &f0, &addr0, dom0);
    let lut1 = dff_lut(nl, &f1, &addr1, dom1);

    // x_s feeds the ND output mux directly (the paper rearranges the
    // bound set so x_s = x'_b; electrically equivalent).
    let xs = match shared {
        Some(s) => x[s],
        None => nl.const0(),
    };
    let fsel = nl.mux2(lut0.output, lut1.output, xs);
    let nd_or_normal = nl.mux2(lut0.output, fsel, mode2);
    let y = nl.mux2(bound.output, nd_or_normal, mode1);

    let mut presets = bound.presets;
    let bound_len = presets.len();
    presets.extend(lut0.presets);
    presets.extend(lut1.presets);
    let disabled = match (mode1v, mode2v) {
        (false, false) => vec![dom0, dom1],
        (true, false) => vec![dom1],
        _ => Vec::new(),
    };
    Ok(BitBlock {
        y,
        presets,
        disabled,
        bound_len,
    })
}

/// Builds the full multi-output approximate LUT: one per-bit block per
/// output bit, in the requested architecture style.
///
/// # Errors
///
/// Returns [`HwError::UnsupportedMode`] if a bit's mode cannot be
/// realised by `style`.
pub fn build_approx_lut(
    config: &ApproxLutConfig,
    style: ArchStyle,
) -> Result<ArchInstance, HwError> {
    let mut nl = Netlist::new(format!(
        "approx_lut_{}",
        style.name().to_lowercase().replace('-', "_")
    ));
    let x = nl.input_bus("x", config.inputs());
    let mut presets = Vec::new();
    let mut disabled = Vec::new();
    let mut bound_ranges = Vec::new();
    for bc in config.bits() {
        let block = match style {
            ArchStyle::Dalta => dalta_bit(&mut nl, &x, &bc.decomp, bc.bit)?,
            ArchStyle::BtoNormal => bto_normal_bit(&mut nl, &x, &bc.decomp, bc.bit)?,
            ArchStyle::BtoNormalNd => bto_normal_nd_bit(&mut nl, &x, &bc.decomp, bc.bit)?,
        };
        nl.output(format!("y[{}]", bc.bit), block.y);
        let start = presets.len();
        bound_ranges.push(start..start + block.bound_len);
        presets.extend(block.presets);
        disabled.extend(block.disabled);
    }
    Ok(
        ArchInstance::new(nl, presets, disabled, config.inputs(), config.outputs())
            .with_bound_ranges(bound_ranges),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::builder::random_table;
    use dalut_boolfn::{InputDistribution, TruthTable};
    use dalut_core::{ApproxLutBuilder, ArchPolicy, BsSaParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn searched_config(seed: u64, policy: ArchPolicy) -> (TruthTable, ApproxLutConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_table(6, 3, &mut rng).unwrap();
        let d = InputDistribution::uniform(6).unwrap();
        let out = ApproxLutBuilder::new(&g)
            .distribution(d.clone())
            .bs_sa(BsSaParams::fast())
            .policy(policy)
            .run()
            .unwrap();
        (g, out.config)
    }

    fn verify_instance(config: &ApproxLutConfig, style: ArchStyle) {
        let inst = build_approx_lut(config, style).unwrap();
        let mut sim = inst.simulator().unwrap();
        for x in 0..(1u32 << config.inputs()) {
            let hw = inst.read(&mut sim, x);
            assert_eq!(hw, config.eval(x), "style {style:?} x={x:06b}");
        }
    }

    #[test]
    fn dalta_architecture_matches_software_model() {
        let (_, cfg) = searched_config(1, ArchPolicy::NormalOnly);
        verify_instance(&cfg, ArchStyle::Dalta);
    }

    #[test]
    fn bto_normal_architecture_matches_software_model() {
        let (_, cfg) = searched_config(2, ArchPolicy::bto_normal_paper());
        verify_instance(&cfg, ArchStyle::BtoNormal);
        // Normal-only configs also map onto BTO-Normal.
        let (_, cfg2) = searched_config(3, ArchPolicy::NormalOnly);
        verify_instance(&cfg2, ArchStyle::BtoNormal);
    }

    #[test]
    fn bto_normal_nd_architecture_matches_software_model() {
        let (_, cfg) = searched_config(4, ArchPolicy::bto_normal_nd_paper());
        verify_instance(&cfg, ArchStyle::BtoNormalNd);
    }

    #[test]
    fn dalta_rejects_bto_configs() {
        let (_, cfg) = searched_config(5, ArchPolicy::bto_normal_nd_paper());
        // Only reject if some bit actually uses BTO or ND.
        let has_special = cfg
            .bits()
            .iter()
            .any(|bc| bc.mode() != dalut_core::BitMode::Normal);
        let res = build_approx_lut(&cfg, ArchStyle::Dalta);
        assert_eq!(res.is_err(), has_special);
    }

    #[test]
    fn style_support_matrix() {
        use dalut_core::BitMode::*;
        assert!(ArchStyle::Dalta.supports(Normal));
        assert!(!ArchStyle::Dalta.supports(Bto));
        assert!(ArchStyle::BtoNormal.supports(Bto));
        assert!(!ArchStyle::BtoNormal.supports(NonDisjoint));
        assert!(ArchStyle::BtoNormalNd.supports(NonDisjoint));
    }

    #[test]
    fn gated_free_tables_save_clock_energy() {
        use dalut_netlist::{power_report, CellLibrary};
        // A config with at least one BTO bit must burn less clock energy
        // on BTO-Normal than the same netlist with everything enabled.
        let (_, cfg) = searched_config(6, ArchPolicy::bto_normal_paper());
        let bto_bits = cfg.mode_counts().0;
        if bto_bits == 0 {
            return; // seed produced no BTO bits; covered by other seeds
        }
        let inst = build_approx_lut(&cfg, ArchStyle::BtoNormal).unwrap();
        let lib = CellLibrary::nangate45();
        let mut gated = inst.simulator().unwrap();
        let mut ungated = inst.simulator().unwrap();
        for d in inst.disabled_domains() {
            ungated.set_domain_enabled(*d, true); // defeat the gating
        }
        for x in 0..64u32 {
            gated.eval_word(u64::from(x));
            ungated.eval_word(u64::from(x));
        }
        let pg = power_report(inst.netlist(), &gated, &lib, 1.0);
        let pu = power_report(inst.netlist(), &ungated, &lib, 1.0);
        assert!(pg.clock_energy_fj < pu.clock_energy_fj);
    }
}
