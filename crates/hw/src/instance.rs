//! A built architecture instance and its characterisation (area, timing,
//! energy per read — the paper's Fig. 5 metrics).

use crate::arch::HwError;
use crate::simopt::{default_sim_options, SimOptions};
use dalut_core::parallel::run_tasks;
use dalut_core::{NoopObserver, Observer, SearchEvent};
use dalut_netlist::{
    area_um2, critical_path_ns, merge_chunk_stats, power_report, BatchSimulator, CellLibrary,
    ChunkStats, CompiledNetlist, DomainId, NetId, Netlist, NetlistError, PowerReport, SimBackend,
    Simulator, WideSimulator, LANES,
};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A fully built hardware instance: netlist plus the ROM presets and
/// clock-gating choices that realise one configuration.
#[derive(Debug)]
pub struct ArchInstance {
    netlist: Netlist,
    presets: Vec<(NetId, bool)>,
    disabled: Vec<DomainId>,
    inputs: usize,
    outputs: usize,
    /// Per-output-bit range into `presets` holding that bit's bound
    /// table (the runtime-rewritable region). Empty for instances built
    /// without a recorded layout (rounding baselines, hardened copies).
    bound_ranges: Vec<Range<usize>>,
}

impl ArchInstance {
    pub(crate) fn new(
        netlist: Netlist,
        presets: Vec<(NetId, bool)>,
        disabled: Vec<DomainId>,
        inputs: usize,
        outputs: usize,
    ) -> Self {
        Self {
            netlist,
            presets,
            disabled,
            inputs,
            outputs,
            bound_ranges: Vec::new(),
        }
    }

    pub(crate) fn with_bound_ranges(mut self, bound_ranges: Vec<Range<usize>>) -> Self {
        self.bound_ranges = bound_ranges;
        self
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The clock domains this configuration gates off.
    pub fn disabled_domains(&self) -> &[DomainId] {
        &self.disabled
    }

    /// The stored bits of this instance: every `(DFF, value)` preset that
    /// loads the bound/free sub-tables and per-bit configuration memory.
    /// This is the fault surface the [`fault`](crate::fault) module
    /// corrupts.
    pub fn presets(&self) -> &[(NetId, bool)] {
        &self.presets
    }

    /// The range into [`presets`](Self::presets) holding output bit
    /// `bit`'s bound table — the region the DFF write port can rewrite
    /// at runtime ([`rewrite_bound_table`](Self::rewrite_bound_table)).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::NoBoundTable`] if the instance records no
    /// bound-table layout for that bit (out of range, or a rounding
    /// baseline / hardened copy).
    pub fn bound_table_range(&self, bit: usize) -> Result<Range<usize>, HwError> {
        self.bound_ranges
            .get(bit)
            .cloned()
            .ok_or(HwError::NoBoundTable { bit })
    }

    /// Reads back the stored bound-table contents of output bit `bit`,
    /// in bound-column order.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::NoBoundTable`] as
    /// [`bound_table_range`](Self::bound_table_range).
    pub fn bound_table(&self, bit: usize) -> Result<Vec<bool>, HwError> {
        let range = self.bound_table_range(bit)?;
        Ok(self.presets[range].iter().map(|&(_, v)| v).collect())
    }

    /// Rewrites output bit `bit`'s bound table in place through the
    /// writable-DFF path — the library form of the
    /// `runtime_reprogram` example's write loop. Only differing entries
    /// are written (a diff write, as a runtime controller would issue);
    /// returns the number of single-bit writes performed.
    ///
    /// The instance keeps serving its other tables untouched: the next
    /// [`simulator`](Self::simulator) / [`batch_simulator`](Self::batch_simulator)
    /// loads the new contents.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::NoBoundTable`] if no layout is recorded for
    /// `bit`, and [`HwError::TableShape`] if `pattern` does not match
    /// the table's entry count.
    pub fn rewrite_bound_table(&mut self, bit: usize, pattern: &[bool]) -> Result<usize, HwError> {
        let range = self.bound_table_range(bit)?;
        if pattern.len() != range.len() {
            return Err(HwError::TableShape {
                expected: range.len(),
                got: pattern.len(),
            });
        }
        let mut writes = 0;
        for (slot, &v) in self.presets[range].iter_mut().zip(pattern) {
            if slot.1 != v {
                slot.1 = v;
                writes += 1;
            }
        }
        Ok(writes)
    }

    /// Returns a *hardened* copy: the netlist run through constant
    /// propagation and dead-cell elimination
    /// ([`dalut_netlist::optimize`]), with the ROM presets carried over.
    /// This models synthesising the chosen configuration as a fixed
    /// function instead of deploying the reconfigurable fabric — the
    /// statically-routed mux trees, pinned mode muxes, and any fully
    /// gated-off tables fold away.
    pub fn hardened(&self) -> ArchInstance {
        let (netlist, _stats, map) = dalut_netlist::opt::optimize_mapped(&self.netlist);
        let presets = self
            .presets
            .iter()
            .filter_map(|&(q, v)| map[q.index()].map(|nq| (nq, v)))
            .collect();
        ArchInstance {
            netlist,
            presets,
            disabled: self.disabled.clone(),
            inputs: self.inputs,
            outputs: self.outputs,
            // Optimisation may drop preset DFFs, invalidating recorded
            // table offsets — a hardened copy models fixed-function
            // synthesis and is not runtime-rewritable.
            bound_ranges: Vec::new(),
        }
    }

    /// Renders the instance as structural Verilog, including an `initial`
    /// block loading the ROM contents (without which the module would
    /// not compute the configured function).
    pub fn to_verilog(&self) -> String {
        dalut_netlist::to_verilog_with_presets(&self.netlist, &self.presets)
    }

    /// Creates a simulator with ROM contents preset and gated domains
    /// disabled.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn simulator(&self) -> Result<Simulator<'_>, NetlistError> {
        self.simulator_with_presets(&self.presets)
    }

    /// Like [`simulator`](Self::simulator), but loads the caller's copy
    /// of the stored bits instead of the built-in presets — the entry
    /// point for fault injection, which corrupts a copy of
    /// [`presets`](Self::presets) and simulates the damaged instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn simulator_with_presets(
        &self,
        presets: &[(NetId, bool)],
    ) -> Result<Simulator<'_>, NetlistError> {
        let mut sim = Simulator::new(&self.netlist)?;
        for &(q, v) in presets {
            sim.preset_dff(q, v)?;
        }
        for &d in &self.disabled {
            sim.set_domain_enabled(d, false);
        }
        Ok(sim)
    }

    /// Creates a 64-way [`BatchSimulator`] with ROM contents preset and
    /// gated domains disabled — the fast sign-off engine behind
    /// [`measure`](Self::measure).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn batch_simulator(&self) -> Result<BatchSimulator<'_>, NetlistError> {
        self.batch_simulator_with_presets(&self.presets)
    }

    /// Like [`batch_simulator`](Self::batch_simulator), but loads the
    /// caller's copy of the stored bits — the batched entry point for
    /// fault injection (corrupted presets are broadcast across lanes).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn batch_simulator_with_presets(
        &self,
        presets: &[(NetId, bool)],
    ) -> Result<BatchSimulator<'_>, NetlistError> {
        let mut sim = BatchSimulator::new(&self.netlist)?;
        for &(q, v) in presets {
            sim.preset_dff(q, v)?;
        }
        for &d in &self.disabled {
            sim.set_domain_enabled(d, false);
        }
        Ok(sim)
    }

    /// Performs one read operation.
    pub fn read(&self, sim: &mut Simulator<'_>, x: u32) -> u32 {
        sim.eval_word(u64::from(x)) as u32
    }

    /// Performs up to 64 read operations as one simulated lane block,
    /// writing one output word per read. Results (and the simulator's
    /// toggle/activity statistics) are bit-identical to calling
    /// [`read`](Self::read) per element on a scalar simulator.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadLaneCount`] if `reads` is empty or
    /// longer than [`LANES`], and [`NetlistError::PortWidthMismatch`]
    /// if `out` differs in length from `reads`.
    ///
    /// # Panics
    ///
    /// Panics if the instance interface exceeds 64 bits either way.
    pub fn read_block(
        &self,
        sim: &mut BatchSimulator<'_>,
        reads: &[u32],
        out: &mut [u32],
    ) -> Result<(), NetlistError> {
        let lanes = reads.len();
        if !(1..=LANES).contains(&lanes) {
            return Err(NetlistError::BadLaneCount { lanes, max: LANES });
        }
        if out.len() != lanes {
            return Err(NetlistError::PortWidthMismatch {
                role: "output",
                expected: lanes,
                got: out.len(),
            });
        }
        assert!(
            self.inputs <= 64 && self.outputs <= 64,
            "read_block supports interfaces up to 64 bits"
        );
        let mut in_words = [0u64; 64];
        for (l, &x) in reads.iter().enumerate() {
            let x = u64::from(x);
            for (k, word) in in_words[..self.inputs].iter_mut().enumerate() {
                *word |= ((x >> k) & 1) << l;
            }
        }
        let mut out_words = [0u64; 64];
        sim.step_block(
            &in_words[..self.inputs],
            lanes,
            &mut out_words[..self.outputs],
        )?;
        for (l, slot) in out.iter_mut().enumerate() {
            let mut y = 0u32;
            for (k, word) in out_words[..self.outputs].iter().enumerate() {
                y |= (((word >> l) & 1) as u32) << k;
            }
            *slot = y;
        }
        Ok(())
    }

    /// Lowers the instance's netlist into the compiled
    /// structure-of-arrays form the wide engines run on. Compile once,
    /// then instantiate any number of [`WideSimulator`]s (or chunk
    /// workers) over the result.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn compile(&self) -> Result<CompiledNetlist, NetlistError> {
        CompiledNetlist::compile(&self.netlist)
    }

    /// Creates a wide (compiled-engine) simulator for `backend` with
    /// ROM contents preset and gated domains disabled.
    ///
    /// # Errors
    ///
    /// Returns an error if a preset targets a non-DFF net.
    pub fn wide_simulator<'c>(
        &self,
        compiled: &'c CompiledNetlist,
        backend: SimBackend,
    ) -> Result<WideSimulator<'c>, NetlistError> {
        self.wide_simulator_with_presets(compiled, backend, &self.presets)
    }

    /// Like [`wide_simulator`](Self::wide_simulator), but loads the
    /// caller's copy of the stored bits — the wide entry point for
    /// fault injection and the runtime error monitors.
    ///
    /// # Errors
    ///
    /// Returns an error if a preset targets a non-DFF net.
    pub fn wide_simulator_with_presets<'c>(
        &self,
        compiled: &'c CompiledNetlist,
        backend: SimBackend,
        presets: &[(NetId, bool)],
    ) -> Result<WideSimulator<'c>, NetlistError> {
        let mut sim = WideSimulator::new(compiled, backend);
        for &(q, v) in presets {
            sim.preset_dff(q, v)?;
        }
        for &d in &self.disabled {
            sim.set_domain_enabled(d, false);
        }
        Ok(sim)
    }

    /// Performs up to [`WideSimulator::lanes_per_block`] read
    /// operations as one wide lane block; the generalisation of
    /// [`read_block`](Self::read_block) to any backend width. Results
    /// and activity statistics are bit-identical to the scalar engine.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadLaneCount`] /
    /// [`NetlistError::PortWidthMismatch`] on malformed calls.
    ///
    /// # Panics
    ///
    /// Panics if the instance interface exceeds 64 bits either way.
    pub fn read_block_wide(
        &self,
        sim: &mut WideSimulator<'_>,
        reads: &[u32],
        out: &mut [u32],
    ) -> Result<(), NetlistError> {
        let lanes = reads.len();
        let max = sim.lanes_per_block();
        if !(1..=max).contains(&lanes) {
            return Err(NetlistError::BadLaneCount { lanes, max });
        }
        if out.len() != lanes {
            return Err(NetlistError::PortWidthMismatch {
                role: "output",
                expected: lanes,
                got: out.len(),
            });
        }
        assert!(
            self.inputs <= 64 && self.outputs <= 64,
            "read_block_wide supports interfaces up to 64 bits"
        );
        let limbs = sim.limbs_per_word();
        let mut in_words = vec![0u64; self.inputs * limbs];
        for (l, &x) in reads.iter().enumerate() {
            let x = u64::from(x);
            for k in 0..self.inputs {
                in_words[k * limbs + l / 64] |= ((x >> k) & 1) << (l % 64);
            }
        }
        let mut out_words = vec![0u64; self.outputs * limbs];
        sim.step_block(&in_words, lanes, &mut out_words)?;
        for (l, slot) in out.iter_mut().enumerate() {
            let mut y = 0u32;
            for k in 0..self.outputs {
                y |= (((out_words[k * limbs + l / 64] >> (l % 64)) & 1) as u32) << k;
            }
            *slot = y;
        }
        Ok(())
    }

    /// Simulates `reads` with the process-default backend and returns
    /// the outputs only (no power report) — the entry point for
    /// functional checks and the runtime controller's error monitors.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn read_sequence(&self, reads: &[u32]) -> Result<Vec<u32>, NetlistError> {
        self.read_sequence_with_presets(&self.presets, reads)
    }

    /// [`read_sequence`](Self::read_sequence) over the caller's copy of
    /// the stored bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn read_sequence_with_presets(
        &self,
        presets: &[(NetId, bool)],
        reads: &[u32],
    ) -> Result<Vec<u32>, NetlistError> {
        let backend = default_sim_options().backend;
        let mut outs = vec![0u32; reads.len()];
        if backend == SimBackend::Scalar {
            let mut sim = self.simulator_with_presets(presets)?;
            for (slot, &x) in outs.iter_mut().zip(reads) {
                *slot = self.read(&mut sim, x);
            }
            return Ok(outs);
        }
        let compiled = self.compile()?;
        let mut sim = self.wide_simulator_with_presets(&compiled, backend, presets)?;
        let lanes = sim.lanes_per_block();
        for (block_in, block_out) in reads.chunks(lanes).zip(outs.chunks_mut(lanes)) {
            self.read_block_wide(&mut sim, block_in, block_out)?;
        }
        Ok(outs)
    }

    /// Simulates the given read sequence and returns the outputs plus the
    /// energy report. Runs on the process-default simulation backend;
    /// outputs and the report are bit-identical to
    /// [`measure_scalar`](Self::measure_scalar) on every backend.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn measure(
        &self,
        reads: &[u32],
        lib: &CellLibrary,
        clock_period_ns: f64,
    ) -> Result<(Vec<u32>, PowerReport), NetlistError> {
        self.measure_observed(reads, lib, clock_period_ns, &NoopObserver)
    }

    /// [`measure`](Self::measure) with an [`Observer`]: emits one
    /// [`SearchEvent::SimBatch`] summarising the blocks simulated. Runs
    /// with the process-default [`SimOptions`]
    /// (see [`default_sim_options`]); use
    /// [`measure_with`](Self::measure_with) for per-call control.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn measure_observed(
        &self,
        reads: &[u32],
        lib: &CellLibrary,
        clock_period_ns: f64,
        observer: &dyn Observer,
    ) -> Result<(Vec<u32>, PowerReport), NetlistError> {
        self.measure_with(
            reads,
            lib,
            clock_period_ns,
            &default_sim_options(),
            observer,
        )
    }

    /// Simulates `reads` under explicit [`SimOptions`]: the scalar
    /// reference, any wide backend, or — when `opts.threads > 1`, the
    /// netlist is [chunk-parallel safe](CompiledNetlist::chunk_parallel_safe)
    /// and the trace spans at least two chunks — block-parallel
    /// stimulus over the worker pool with exact carry stitching.
    /// Outputs and the report are bit-identical across every path.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn measure_with(
        &self,
        reads: &[u32],
        lib: &CellLibrary,
        clock_period_ns: f64,
        opts: &SimOptions,
        observer: &dyn Observer,
    ) -> Result<(Vec<u32>, PowerReport), NetlistError> {
        let backend = opts.backend.resolve();
        if backend == SimBackend::Scalar {
            let result = self.measure_scalar(reads, lib, clock_period_ns)?;
            if observer.enabled() {
                observer.on_event(&SearchEvent::SimBatch {
                    engine: "scalar".to_string(),
                    cycles: reads.len() as u64,
                    blocks: reads.len() as u64,
                });
            }
            return Ok(result);
        }

        let compiled = self.compile()?;
        let mut enabled = vec![true; self.netlist.domains().len()];
        for d in &self.disabled {
            enabled[d.index()] = false;
        }
        let chunk = opts.chunk_cycles.max(1);
        let chunked =
            opts.threads > 1 && reads.len() >= 2 * chunk && compiled.chunk_parallel_safe(&enabled);
        let (outs, report, blocks) = if chunked {
            self.measure_chunked(reads, lib, clock_period_ns, &compiled, backend, opts)?
        } else {
            let mut sim = self.wide_simulator(&compiled, backend)?;
            let lanes = sim.lanes_per_block();
            let mut outs = vec![0u32; reads.len()];
            let mut blocks = 0u64;
            for (block_in, block_out) in reads.chunks(lanes).zip(outs.chunks_mut(lanes)) {
                self.read_block_wide(&mut sim, block_in, block_out)?;
                blocks += 1;
            }
            let report = power_report(&self.netlist, &sim, lib, clock_period_ns);
            (outs, report, blocks)
        };
        if observer.enabled() {
            observer.on_event(&SearchEvent::SimBatch {
                engine: backend.to_string(),
                cycles: reads.len() as u64,
                blocks,
            });
        }
        Ok((outs, report))
    }

    /// The block-parallel path of [`measure_with`](Self::measure_with):
    /// fixed-size stimulus chunks fan out over the worker pool, each on
    /// its own wide simulator, and the per-chunk activity is merged
    /// with exact carry stitching. Chunk boundaries depend only on
    /// `opts.chunk_cycles`, never on the thread count, so results are
    /// bit-identical at any parallelism level.
    fn measure_chunked(
        &self,
        reads: &[u32],
        lib: &CellLibrary,
        clock_period_ns: f64,
        compiled: &CompiledNetlist,
        backend: SimBackend,
        opts: &SimOptions,
    ) -> Result<(Vec<u32>, PowerReport, u64), NetlistError> {
        type ChunkResult = Result<(Vec<u32>, ChunkStats, u64), NetlistError>;
        let chunk = opts.chunk_cycles.max(1);
        let tasks: Vec<_> = reads
            .chunks(chunk)
            .map(|chunk_reads| {
                move || -> ChunkResult {
                    let mut sim = self.wide_simulator(compiled, backend)?;
                    let lanes = sim.lanes_per_block();
                    let mut outs = vec![0u32; chunk_reads.len()];
                    let mut blocks = 0u64;
                    for (bi, bo) in chunk_reads.chunks(lanes).zip(outs.chunks_mut(lanes)) {
                        self.read_block_wide(&mut sim, bi, bo)?;
                        blocks += 1;
                    }
                    Ok((outs, sim.chunk_stats(), blocks))
                }
            })
            .collect();
        let mut outs = Vec::with_capacity(reads.len());
        let mut stats = Vec::new();
        let mut blocks = 0u64;
        for slot in run_tasks(tasks, opts.threads) {
            let (chunk_outs, chunk_stats, chunk_blocks) = slot?;
            outs.extend(chunk_outs);
            stats.push(chunk_stats);
            blocks += chunk_blocks;
        }
        let merged = merge_chunk_stats(compiled, &stats);
        let report = power_report(&self.netlist, &merged, lib, clock_period_ns);
        Ok((outs, report, blocks))
    }

    /// The scalar (one-cycle-at-a-time) reference for
    /// [`measure`](Self::measure); kept for differential testing and for
    /// the `sim_fast_vs_scalar` benchmark.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has a combinational cycle.
    pub fn measure_scalar(
        &self,
        reads: &[u32],
        lib: &CellLibrary,
        clock_period_ns: f64,
    ) -> Result<(Vec<u32>, PowerReport), NetlistError> {
        let mut sim = self.simulator()?;
        let outs: Vec<u32> = reads.iter().map(|&x| self.read(&mut sim, x)).collect();
        let report = power_report(&self.netlist, &sim, lib, clock_period_ns);
        Ok((outs, report))
    }
}

/// The characterisation record the Fig. 5 comparison is built from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchReport {
    /// Total cell area, µm².
    pub area_um2: f64,
    /// Critical-path delay, ns.
    pub critical_path_ns: f64,
    /// Average energy per read operation, fJ.
    pub energy_per_read_fj: f64,
    /// The itemised energy of the measured window.
    pub power: PowerReport,
    /// Number of read operations measured.
    pub reads: usize,
}

/// Characterises an instance over a read trace: area and timing come from
/// static analysis, energy from simulating the reads at the given clock
/// period (the paper measures the average energy of 1024 reads).
///
/// # Errors
///
/// Returns an error if the netlist has a combinational cycle.
pub fn characterize(
    inst: &ArchInstance,
    reads: &[u32],
    lib: &CellLibrary,
    clock_period_ns: f64,
) -> Result<ArchReport, NetlistError> {
    characterize_observed(inst, reads, lib, clock_period_ns, &NoopObserver)
}

/// [`characterize`] with an [`Observer`]: the simulation blocks are
/// reported as [`SearchEvent::SimBatch`] events.
///
/// # Errors
///
/// Returns an error if the netlist has a combinational cycle.
pub fn characterize_observed(
    inst: &ArchInstance,
    reads: &[u32],
    lib: &CellLibrary,
    clock_period_ns: f64,
    observer: &dyn Observer,
) -> Result<ArchReport, NetlistError> {
    let (_, power) = inst.measure_observed(reads, lib, clock_period_ns, observer)?;
    Ok(ArchReport {
        area_um2: area_um2(inst.netlist(), lib),
        critical_path_ns: critical_path_ns(inst.netlist(), lib)?,
        energy_per_read_fj: power.energy_per_cycle_fj(),
        power,
        reads: reads.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_approx_lut, ArchStyle};
    use dalut_boolfn::builder::random_table;
    use dalut_boolfn::InputDistribution;
    use dalut_core::ArchPolicy as Policy;
    use dalut_core::{ApproxLutBuilder, ArchPolicy, BsSaParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(seed: u64) -> (ArchInstance, dalut_core::ApproxLutConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_table(6, 3, &mut rng).unwrap();
        let d = InputDistribution::uniform(6).unwrap();
        let out = ApproxLutBuilder::new(&g)
            .distribution(d.clone())
            .bs_sa(BsSaParams::fast())
            .policy(ArchPolicy::NormalOnly)
            .run()
            .unwrap();
        (
            build_approx_lut(&out.config, ArchStyle::Dalta).unwrap(),
            out.config,
        )
    }

    #[test]
    fn measure_returns_matching_outputs() {
        let (inst, cfg) = instance(1);
        let lib = CellLibrary::nangate45();
        let mut rng = StdRng::seed_from_u64(2);
        let reads: Vec<u32> = (0..64).map(|_| rng.random_range(0..64)).collect();
        let (outs, power) = inst.measure(&reads, &lib, 1.0).unwrap();
        for (x, y) in reads.iter().zip(&outs) {
            assert_eq!(*y, cfg.eval(*x));
        }
        assert_eq!(power.cycles, 64);
        assert!(power.total_energy_fj() > 0.0);
    }

    #[test]
    fn characterize_reports_all_metrics() {
        let (inst, _) = instance(3);
        let lib = CellLibrary::nangate45();
        let reads: Vec<u32> = (0..64).collect();
        let rep = characterize(&inst, &reads, &lib, 1.0).unwrap();
        assert!(rep.area_um2 > 0.0);
        assert!(rep.critical_path_ns > 0.0);
        assert!(rep.energy_per_read_fj > 0.0);
        assert_eq!(rep.reads, 64);
    }

    #[test]
    fn hardened_instance_is_equivalent_and_smaller() {
        // BTO-Normal with gated bits folds dramatically when hardened.
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_table(6, 3, &mut rng).unwrap();
        let d = InputDistribution::uniform(6).unwrap();
        let out = ApproxLutBuilder::new(&g)
            .distribution(d.clone())
            .bs_sa(BsSaParams::fast())
            .policy(Policy::bto_normal_paper())
            .run()
            .unwrap();
        let inst = build_approx_lut(&out.config, ArchStyle::BtoNormal).unwrap();
        let hard = inst.hardened();
        assert!(
            hard.netlist().cell_count() < inst.netlist().cell_count(),
            "hardening must fold static logic ({} vs {})",
            hard.netlist().cell_count(),
            inst.netlist().cell_count()
        );
        let mut s1 = inst.simulator().unwrap();
        let mut s2 = hard.simulator().unwrap();
        for x in 0..64u32 {
            assert_eq!(inst.read(&mut s1, x), hard.read(&mut s2, x), "x={x:06b}");
        }
    }

    #[test]
    fn hardened_bto_bits_drop_their_free_tables() {
        use dalut_core::{ApproxLutConfig, BitConfig};
        use dalut_decomp::{AnyDecomp, BtoDecomp};
        // A pure-BTO config: the hardened netlist should hold only the
        // bound tables (plus muxes), with every free-table DFF removed.
        let p = dalut_boolfn::Partition::new(6, 0b000111).unwrap();
        let bits = (0..2usize)
            .map(|bit| BitConfig {
                bit,
                decomp: AnyDecomp::Bto(
                    BtoDecomp::new(p, (0..8).map(|c| c % 2 == 0).collect()).unwrap(),
                ),
                expected_error: 0.0,
            })
            .collect();
        let cfg = ApproxLutConfig::new(6, 2, bits).unwrap();
        let inst = build_approx_lut(&cfg, ArchStyle::BtoNormal).unwrap();
        let hard = inst.hardened();
        // 2 bits x 8-entry bound tables = 16 DFFs; free tables (2 x 32)
        // are gone.
        assert_eq!(hard.netlist().total_dffs(), 16);
        let mut sim = hard.simulator().unwrap();
        for x in 0..64u32 {
            assert_eq!(hard.read(&mut sim, x), cfg.eval(x));
        }
    }

    #[test]
    fn bound_table_readback_and_rewrite() {
        use dalut_core::{ApproxLutConfig, BitConfig};
        use dalut_decomp::{AnyDecomp, BtoDecomp};
        // Two pure-BTO bits: each output is its bound table directly, so
        // a rewrite is observable on every read.
        let p = dalut_boolfn::Partition::new(6, 0b000111).unwrap();
        let pat_a: Vec<bool> = (0..8).map(|c| c % 2 == 0).collect();
        let pat_b: Vec<bool> = (0..8).map(|c| c % 3 == 0).collect();
        let bits = (0..2usize)
            .map(|bit| BitConfig {
                bit,
                decomp: AnyDecomp::Bto(BtoDecomp::new(p, pat_a.clone()).unwrap()),
                expected_error: 0.0,
            })
            .collect();
        let cfg = ApproxLutConfig::new(6, 2, bits).unwrap();
        let mut inst = build_approx_lut(&cfg, ArchStyle::BtoNormal).unwrap();
        assert_eq!(inst.bound_table(0).unwrap(), pat_a);
        assert_eq!(inst.bound_table(1).unwrap(), pat_a);

        let expected_writes = pat_a.iter().zip(&pat_b).filter(|(x, y)| x != y).count();
        assert_eq!(
            inst.rewrite_bound_table(1, &pat_b).unwrap(),
            expected_writes
        );
        // A second identical rewrite is a no-op diff write.
        assert_eq!(inst.rewrite_bound_table(1, &pat_b).unwrap(), 0);
        assert_eq!(inst.bound_table(0).unwrap(), pat_a);
        assert_eq!(inst.bound_table(1).unwrap(), pat_b);

        // The next simulator serves the rewritten contents: bit 0 still
        // follows pat_a, bit 1 now follows pat_b.
        let mut sim = inst.simulator().unwrap();
        for x in 0..64u32 {
            let col = (x & 7) as usize;
            let y = inst.read(&mut sim, x);
            assert_eq!(y & 1 == 1, pat_a[col], "bit 0 at x={x:06b}");
            assert_eq!(y >> 1 & 1 == 1, pat_b[col], "bit 1 at x={x:06b}");
        }
    }

    #[test]
    fn rewrite_rejects_bad_bits_and_shapes() {
        let (mut inst, _) = instance(7);
        let m = inst.outputs();
        assert!(matches!(
            inst.bound_table(m),
            Err(crate::HwError::NoBoundTable { .. })
        ));
        let entries = inst.bound_table(0).unwrap().len();
        assert!(matches!(
            inst.rewrite_bound_table(0, &vec![true; entries + 1]),
            Err(crate::HwError::TableShape { .. })
        ));
        // Rounding baselines and hardened copies record no layout.
        let g = dalut_boolfn::TruthTable::from_fn(6, 3, |x| x & 7).unwrap();
        let round = crate::rounding::build_round_out(&g, 1);
        assert!(matches!(
            round.bound_table(0),
            Err(crate::HwError::NoBoundTable { bit: 0 })
        ));
        assert!(matches!(
            inst.hardened().bound_table(0),
            Err(crate::HwError::NoBoundTable { bit: 0 })
        ));
    }

    #[test]
    fn batched_measure_matches_scalar_bit_for_bit() {
        let (inst, _) = instance(5);
        let lib = CellLibrary::nangate45();
        let mut rng = StdRng::seed_from_u64(11);
        // 130 reads: two full lane words plus a ragged 2-lane tail.
        let reads: Vec<u32> = (0..130).map(|_| rng.random_range(0..64)).collect();
        let (outs_b, power_b) = inst.measure(&reads, &lib, 1.0).unwrap();
        let (outs_s, power_s) = inst.measure_scalar(&reads, &lib, 1.0).unwrap();
        assert_eq!(outs_b, outs_s);
        assert_eq!(power_b, power_s);
    }

    #[test]
    fn measure_observed_emits_one_sim_batch_event() {
        let (inst, _) = instance(6);
        let lib = CellLibrary::nangate45();
        let obs = dalut_core::RecordingObserver::new();
        let reads: Vec<u32> = (0..65).collect();
        inst.measure_observed(&reads, &lib, 1.0, &obs).unwrap();
        let events = obs.events();
        assert_eq!(events.len(), 1);
        // The default backend is `auto`, which resolves per CPU — the
        // event must name the resolved wide backend and count its
        // (width-dependent) blocks.
        let resolved = SimBackend::Auto.resolve();
        match &events[0] {
            SearchEvent::SimBatch {
                engine,
                cycles,
                blocks,
            } => {
                assert_eq!(engine, &resolved.to_string());
                assert_eq!(*cycles, 65);
                assert_eq!(*blocks, 65u64.div_ceil(resolved.lanes() as u64));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn every_backend_measures_identically() {
        let (inst, _) = instance(9);
        let lib = CellLibrary::nangate45();
        let mut rng = StdRng::seed_from_u64(13);
        let reads: Vec<u32> = (0..300).map(|_| rng.random_range(0..64)).collect();
        let (ref_outs, ref_power) = inst.measure_scalar(&reads, &lib, 1.0).unwrap();
        for backend in SimBackend::all_wide() {
            let opts = SimOptions {
                backend,
                ..SimOptions::default()
            };
            let (outs, power) = inst
                .measure_with(&reads, &lib, 1.0, &opts, &NoopObserver)
                .unwrap();
            assert_eq!(outs, ref_outs, "{backend}: outputs diverged");
            assert_eq!(power, ref_power, "{backend}: power diverged");
        }
        // Explicit scalar routing through measure_with matches too.
        let opts = SimOptions {
            backend: SimBackend::Scalar,
            ..SimOptions::default()
        };
        let (outs, power) = inst
            .measure_with(&reads, &lib, 1.0, &opts, &NoopObserver)
            .unwrap();
        assert_eq!((outs, power), (ref_outs, ref_power));
    }

    #[test]
    fn chunk_parallel_measure_is_bit_identical() {
        let (inst, _) = instance(10);
        let lib = CellLibrary::nangate45();
        let mut rng = StdRng::seed_from_u64(17);
        let reads: Vec<u32> = (0..1000).map(|_| rng.random_range(0..64)).collect();
        let (ref_outs, ref_power) = inst.measure_scalar(&reads, &lib, 1.0).unwrap();
        // A LUT instance is all ROM bits, so the chunk path engages.
        let compiled = inst.compile().unwrap();
        assert!(compiled.chunk_parallel_safe(&[true; 64][..inst.netlist().domains().len()]));
        for threads in [2usize, 3, 7] {
            let opts = SimOptions {
                backend: SimBackend::Auto,
                threads,
                chunk_cycles: 128, // small chunks so several actually form
            };
            let (outs, power) = inst
                .measure_with(&reads, &lib, 1.0, &opts, &NoopObserver)
                .unwrap();
            assert_eq!(outs, ref_outs, "{threads} threads: outputs diverged");
            assert_eq!(power, ref_power, "{threads} threads: power diverged");
        }
    }

    #[test]
    fn energy_scales_with_activity_not_reads_alone() {
        // Reading the same address repeatedly must cost less switching
        // energy than sweeping addresses.
        let (inst, _) = instance(4);
        let lib = CellLibrary::nangate45();
        let same = vec![5u32; 64];
        let sweep: Vec<u32> = (0..64).collect();
        let (_, p_same) = inst.measure(&same, &lib, 1.0).unwrap();
        let (_, p_sweep) = inst.measure(&sweep, &lib, 1.0).unwrap();
        assert!(p_same.switching_energy_fj < p_sweep.switching_energy_fj);
        // Clock + leakage identical for identical cycle counts.
        assert!((p_same.clock_energy_fj - p_sweep.clock_energy_fj).abs() < 1e-9);
    }
}
