//! # dalut-hw
//!
//! Hardware models of every architecture in the paper's Fig. 5
//! comparison, built gate-for-gate on the [`dalut_netlist`] substrate:
//!
//! * [`build_approx_lut`] — maps an [`ApproxLutConfig`](dalut_core::ApproxLutConfig)
//!   onto DALTA's rigid approximate single-output LUT (Fig. 1(b)), the
//!   reconfigurable BTO-Normal (Fig. 2(b)) or BTO-Normal-ND (Fig. 4)
//!   architecture — routing boxes, DFF-RAM bound/free tables, mode muxes
//!   and per-table clock gating included;
//! * [`rounding`] — the RoundOut / RoundIn baselines;
//! * [`characterize`] — area, critical path and energy-per-read over a
//!   read trace (the paper's 1024-read measurement);
//! * [`fault`] — fault injection into the stored sub-table/configuration
//!   bits (SEU, stuck-at, burst), with exhaustive degradation reports.
//!
//! ## Example
//!
//! ```
//! use dalut_boolfn::TruthTable;
//! use dalut_core::{ApproxLutBuilder, BsSaParams};
//! use dalut_hw::{build_approx_lut, characterize, ArchStyle};
//! use dalut_netlist::CellLibrary;
//!
//! let target = TruthTable::from_fn(6, 3, |x| (x >> 3) ^ (x & 7)).unwrap();
//! let outcome = ApproxLutBuilder::new(&target)
//!     .bs_sa(BsSaParams::fast())
//!     .run()
//!     .unwrap();
//! let inst = build_approx_lut(&outcome.config, ArchStyle::Dalta).unwrap();
//! let reads: Vec<u32> = (0..64).collect();
//! let report = characterize(&inst, &reads, &CellLibrary::nangate45(), 1.0).unwrap();
//! assert!(report.area_um2 > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod cache;
pub mod fault;
pub mod instance;
pub mod lut;
pub mod reprogram;
pub mod rounding;
pub mod routing;
pub mod simopt;

pub use arch::{build_approx_lut, ArchStyle, HwError};
pub use cache::InstanceCache;
pub use fault::{fault_report, fault_report_scalar, FaultCampaign, FaultModel, FaultReport};
pub use instance::{characterize, characterize_observed, ArchInstance, ArchReport};
pub use lut::{dff_lut, dff_lut_multi, dff_lut_writable, gate_address, LutInstance, WritableLut};
pub use reprogram::WritableBoundTable;
pub use rounding::{build_round_in, build_round_out, round_in_table, round_out_table};
pub use simopt::{default_sim_options, set_default_sim_options, SimOptions, CHUNK_CYCLES};
