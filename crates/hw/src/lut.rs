//! DFF-RAM lookup tables: the paper implements every LUT as a RAM of D
//! flip-flops read through a mux tree.

use dalut_netlist::{DomainId, NetId, Netlist};

/// A built LUT: its output net and the `(rom bit, value)` presets the
/// simulator must apply before reading.
#[derive(Debug, Clone)]
pub struct LutInstance {
    /// The read-port output net.
    pub output: NetId,
    /// ROM-bit presets (net, stored value).
    pub presets: Vec<(NetId, bool)>,
}

/// Builds a single-output LUT holding `contents` (indexed by the address
/// value, LSB-first address bits), with its storage DFFs in `domain`.
///
/// # Panics
///
/// Panics unless `contents.len() == 2^addr.len()`.
pub fn dff_lut(
    nl: &mut Netlist,
    contents: &[bool],
    addr: &[NetId],
    domain: DomainId,
) -> LutInstance {
    assert_eq!(
        contents.len(),
        1usize << addr.len(),
        "LUT contents must cover the address space"
    );
    let mut presets = Vec::with_capacity(contents.len());
    let bits: Vec<NetId> = contents
        .iter()
        .map(|&v| {
            let q = nl.rom_bit(domain);
            presets.push((q, v));
            q
        })
        .collect();
    let output = nl.mux_tree(&bits, addr);
    LutInstance { output, presets }
}

/// Builds a multi-output LUT (`words[x]` read at address `x`), one DFF
/// column + mux tree per output bit. Used by the rounding baselines.
///
/// # Panics
///
/// Panics unless `words.len() == 2^addr.len()` and every word fits in
/// `out_bits`.
pub fn dff_lut_multi(
    nl: &mut Netlist,
    words: &[u32],
    out_bits: usize,
    addr: &[NetId],
    domain: DomainId,
) -> (Vec<NetId>, Vec<(NetId, bool)>) {
    assert_eq!(
        words.len(),
        1usize << addr.len(),
        "LUT contents must cover the address space"
    );
    let mut presets = Vec::with_capacity(words.len() * out_bits);
    let mut outputs = Vec::with_capacity(out_bits);
    for bit in 0..out_bits {
        let contents: Vec<bool> = words
            .iter()
            .map(|&w| {
                assert!(
                    w < (1u64 << out_bits) as u32 || out_bits >= 32,
                    "word does not fit in output width"
                );
                (w >> bit) & 1 == 1
            })
            .collect();
        let lut = dff_lut(nl, &contents, addr, domain);
        outputs.push(lut.output);
        presets.extend(lut.presets);
    }
    (outputs, presets)
}

/// A writable DFF-RAM LUT: its read port plus the write-port nets.
#[derive(Debug, Clone)]
pub struct WritableLut {
    /// The read-port output net.
    pub output: NetId,
    /// ROM-bit presets (net, initial value).
    pub presets: Vec<(NetId, bool)>,
    /// Write-data input net.
    pub wdata: NetId,
    /// Write-enable input net.
    pub wen: NetId,
    /// Write-address input nets (LSB first, same width as the read
    /// address).
    pub waddr: Vec<NetId>,
}

/// Builds a *writable* single-output LUT — the full "RAM consisting of D
/// flip-flops" of the paper, reprogrammable at runtime: every storage
/// bit holds its value unless the write decoder selects it while `wen`
/// is high, in which case it captures `wdata` at the clock edge.
///
/// Costs one address decoder (an AND chain per entry over the true /
/// complemented write-address lines) plus a capture mux per bit, on top
/// of the read-only structure of [`dff_lut`].
///
/// # Panics
///
/// Panics unless `init.len() == 2^addr.len()`.
pub fn dff_lut_writable(
    nl: &mut Netlist,
    init: &[bool],
    addr: &[NetId],
    wdata: NetId,
    wen: NetId,
    waddr: &[NetId],
    domain: DomainId,
) -> WritableLut {
    assert_eq!(
        init.len(),
        1usize << addr.len(),
        "LUT contents must cover the address space"
    );
    assert_eq!(addr.len(), waddr.len(), "read/write address width mismatch");
    use dalut_netlist::CellKind;

    // Shared complemented write-address lines.
    let naddr: Vec<NetId> = waddr.iter().map(|&a| nl.inv(a)).collect();

    let mut presets = Vec::with_capacity(init.len());
    let mut bits = Vec::with_capacity(init.len());
    for (entry, &v) in init.iter().enumerate() {
        // Decoder term: AND over the address literals, then AND with wen.
        let mut sel: Option<NetId> = None;
        for (j, (&aj, &nj)) in waddr.iter().zip(&naddr).enumerate() {
            let lit = if (entry >> j) & 1 == 1 { aj } else { nj };
            sel = Some(match sel {
                None => lit,
                Some(acc) => nl.gate2(CellKind::And2, acc, lit),
            });
        }
        let sel = nl.gate2(CellKind::And2, sel.expect("address width >= 1"), wen);
        // The storage bit: D = sel ? wdata : Q. We must create the DFF
        // first so the mux can reference Q; `rom_bit` gives a self-looped
        // DFF whose D we then rewire through the capture mux.
        let q = nl.rom_bit(domain);
        let d = nl.mux2(q, wdata, sel);
        nl.rewire_dff_input(q, d);
        presets.push((q, v));
        bits.push(q);
    }
    let output = nl.mux_tree(&bits, addr);
    WritableLut {
        output,
        presets,
        wdata,
        wen,
        waddr: waddr.to_vec(),
    }
}

/// Gates an address bus with an enable net (AND per line): when the
/// enable is 0 the downstream mux tree sees a constant address and stops
/// toggling — how the paper "sets the enable signal to zero" for an idle
/// free table.
pub fn gate_address(nl: &mut Netlist, addr: &[NetId], enable: NetId) -> Vec<NetId> {
    addr.iter()
        .map(|&a| nl.gate2(dalut_netlist::CellKind::And2, a, enable))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_netlist::{Simulator, ROOT_DOMAIN};

    fn read_all(contents: &[bool]) -> Vec<bool> {
        let mut nl = Netlist::new("lut");
        let addr = nl.input_bus("a", contents.len().trailing_zeros() as usize);
        let lut = dff_lut(&mut nl, contents, &addr, ROOT_DOMAIN);
        nl.output("y", lut.output);
        let mut sim = Simulator::new(&nl).unwrap();
        for &(q, v) in &lut.presets {
            sim.preset_dff(q, v).unwrap();
        }
        (0..contents.len() as u64)
            .map(|x| sim.eval_word(x) == 1)
            .collect()
    }

    #[test]
    fn lut_reads_back_contents() {
        let contents = [true, false, false, true, true, true, false, false];
        assert_eq!(read_all(&contents), contents);
    }

    #[test]
    fn single_entry_patterns() {
        for i in 0..8usize {
            let mut contents = [false; 8];
            contents[i] = true;
            assert_eq!(read_all(&contents), contents);
        }
    }

    #[test]
    fn multi_output_lut_reads_words() {
        let words = [3u32, 0, 2, 1];
        let mut nl = Netlist::new("mlut");
        let addr = nl.input_bus("a", 2);
        let (outs, presets) = dff_lut_multi(&mut nl, &words, 2, &addr, ROOT_DOMAIN);
        for (i, o) in outs.iter().enumerate() {
            nl.output(format!("y[{i}]"), *o);
        }
        let mut sim = Simulator::new(&nl).unwrap();
        for (q, v) in presets {
            sim.preset_dff(q, v).unwrap();
        }
        for (x, &w) in words.iter().enumerate() {
            assert_eq!(sim.eval_word(x as u64), u64::from(w));
        }
    }

    #[test]
    fn gated_address_freezes_mux_tree() {
        let mut nl = Netlist::new("g");
        let addr = nl.input_bus("a", 3);
        let en = nl.const0();
        let gated = gate_address(&mut nl, &addr, en);
        let contents = [true, false, true, false, true, false, true, false];
        let lut = dff_lut(&mut nl, &contents, &gated, ROOT_DOMAIN);
        nl.output("y", lut.output);
        let mut sim = Simulator::new(&nl).unwrap();
        for &(q, v) in &lut.presets {
            sim.preset_dff(q, v).unwrap();
        }
        // Sweep the address: with enable low, output is contents[0] and no
        // mux toggles accumulate after initialisation.
        sim.eval_word(0);
        let before: u64 = sim.toggles().iter().sum();
        for x in 0..8u64 {
            assert_eq!(sim.eval_word(x), u64::from(contents[0]));
        }
        let after: u64 = sim.toggles().iter().sum();
        // Only the primary-input nets themselves toggle.
        let input_toggles: u64 = addr.iter().map(|&a| sim.toggle_count(a)).sum();
        assert_eq!(after - before, input_toggles);
    }

    fn build_writable(init: &[bool]) -> (Netlist, WritableLut) {
        let bits = init.len().trailing_zeros() as usize;
        let mut nl = Netlist::new("wlut");
        let addr = nl.input_bus("a", bits);
        let wdata = nl.input("wdata");
        let wen = nl.input("wen");
        let waddr = nl.input_bus("wa", bits);
        let lut = dff_lut_writable(&mut nl, init, &addr, wdata, wen, &waddr, ROOT_DOMAIN);
        nl.output("y", lut.output);
        (nl, lut)
    }

    /// Input word layout for the writable LUT: [addr | wdata | wen | waddr].
    fn word(bits: usize, addr: u64, wdata: bool, wen: bool, waddr: u64) -> u64 {
        addr | (u64::from(wdata) << bits) | (u64::from(wen) << (bits + 1)) | (waddr << (bits + 2))
    }

    #[test]
    fn writable_lut_reads_initial_contents() {
        let init = [true, false, true, true, false, false, true, false];
        let (nl, lut) = build_writable(&init);
        let mut sim = Simulator::new(&nl).unwrap();
        for &(q, v) in &lut.presets {
            sim.preset_dff(q, v).unwrap();
        }
        for (x, &want) in init.iter().enumerate() {
            assert_eq!(sim.eval_word(word(3, x as u64, false, false, 0)) == 1, want);
        }
    }

    #[test]
    fn writable_lut_write_then_read() {
        let init = [false; 8];
        let (nl, lut) = build_writable(&init);
        let mut sim = Simulator::new(&nl).unwrap();
        for &(q, v) in &lut.presets {
            sim.preset_dff(q, v).unwrap();
        }
        // Write 1 into entries 2 and 5.
        sim.eval_word(word(3, 0, true, true, 2));
        sim.eval_word(word(3, 0, true, true, 5));
        for x in 0..8u64 {
            let got = sim.eval_word(word(3, x, false, false, 0)) == 1;
            assert_eq!(got, x == 2 || x == 5, "entry {x}");
        }
        // Overwrite entry 2 with 0 again.
        sim.eval_word(word(3, 0, false, true, 2));
        assert_eq!(sim.eval_word(word(3, 2, false, false, 0)), 0);
        assert_eq!(sim.eval_word(word(3, 5, false, false, 0)), 1);
    }

    #[test]
    fn writable_lut_ignores_writes_without_enable() {
        let init = [false; 4];
        let (nl, lut) = build_writable(&init);
        let mut sim = Simulator::new(&nl).unwrap();
        for &(q, v) in &lut.presets {
            sim.preset_dff(q, v).unwrap();
        }
        sim.eval_word(word(2, 0, true, false, 1)); // wen low
        assert_eq!(sim.eval_word(word(2, 1, false, false, 0)), 0);
    }

    #[test]
    fn writable_lut_survives_optimisation() {
        // The optimisation pass must cope with the backward D-pin
        // references the capture muxes introduce.
        let init = [true, false, false, true];
        let (nl, _) = build_writable(&init);
        let (opt, stats) = dalut_netlist::optimize(&nl);
        assert_eq!(opt.total_dffs(), 4);
        assert!(stats.cells_after <= stats.cells_before);
        assert!(dalut_netlist::equivalent_exhaustive(&nl, &opt).unwrap());
    }

    #[test]
    #[should_panic(expected = "cover the address space")]
    fn lut_validates_contents_length() {
        let mut nl = Netlist::new("bad");
        let addr = nl.input_bus("a", 2);
        let _ = dff_lut(&mut nl, &[true; 3], &addr, ROOT_DOMAIN);
    }
}
