//! The two rounding-based baseline architectures of the Fig. 5 comparison
//! (paper §V-B): *RoundOut* drops the `q` output LSBs (full-depth table,
//! narrower words) and *RoundIn* drops `w` input bits (shallower table,
//! each block of `2^w` adjacent inputs answered by its median output).

use crate::instance::ArchInstance;
use crate::lut::dff_lut_multi;
use dalut_boolfn::{BoolFnError, TruthTable};
use dalut_netlist::{Netlist, ROOT_DOMAIN};

/// The software model of RoundOut: output LSBs zeroed.
///
/// # Errors
///
/// Propagates table-construction errors.
///
/// # Panics
///
/// Panics if `q >= m`.
pub fn round_out_table(g: &TruthTable, q: usize) -> Result<TruthTable, BoolFnError> {
    assert!(q < g.outputs(), "q must leave at least one output bit");
    TruthTable::from_fn(g.inputs(), g.outputs(), |x| (g.eval(x) >> q) << q)
}

/// The software model of RoundIn: inputs grouped into blocks of `2^w`
/// adjacent codes; every input in a block returns the block's median
/// output (the paper's construction).
///
/// # Errors
///
/// Propagates table-construction errors.
///
/// # Panics
///
/// Panics if `w >= n`.
pub fn round_in_table(g: &TruthTable, w: usize) -> Result<TruthTable, BoolFnError> {
    assert!(w < g.inputs(), "w must leave at least one address bit");
    let block = 1usize << w;
    let medians: Vec<u32> = g
        .values()
        .chunks(block)
        .map(|chunk| {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            sorted[sorted.len() / 2]
        })
        .collect();
    TruthTable::from_fn(g.inputs(), g.outputs(), |x| medians[(x >> w) as usize])
}

/// Builds RoundOut hardware: a full-depth DFF LUT storing the `m − q`
/// kept bits; the dropped LSB outputs are tied to constant 0 so the
/// instance keeps the target's output width.
pub fn build_round_out(g: &TruthTable, q: usize) -> ArchInstance {
    assert!(q < g.outputs(), "q must leave at least one output bit");
    let mut nl = Netlist::new("round_out");
    let x = nl.input_bus("x", g.inputs());
    let kept: Vec<u32> = g.values().iter().map(|&v| v >> q).collect();
    let (outs, presets) = dff_lut_multi(&mut nl, &kept, g.outputs() - q, &x, ROOT_DOMAIN);
    for k in 0..q {
        let z = nl.const0();
        nl.output(format!("y[{k}]"), z);
    }
    for (i, o) in outs.iter().enumerate() {
        nl.output(format!("y[{}]", i + q), *o);
    }
    ArchInstance::new(nl, presets, Vec::new(), g.inputs(), g.outputs())
}

/// Builds RoundIn hardware: a `2^(n−w)`-entry LUT addressed by the upper
/// input bits, holding the block medians at full output width.
pub fn build_round_in(g: &TruthTable, w: usize) -> ArchInstance {
    assert!(w < g.inputs(), "w must leave at least one address bit");
    let model = round_in_table(g, w).expect("same dimensions as g");
    let mut nl = Netlist::new("round_in");
    let x = nl.input_bus("x", g.inputs());
    let addr = &x[w..];
    let medians: Vec<u32> = model.values().iter().step_by(1 << w).copied().collect();
    let (outs, presets) = dff_lut_multi(&mut nl, &medians, g.outputs(), addr, ROOT_DOMAIN);
    for (i, o) in outs.iter().enumerate() {
        nl.output(format!("y[{i}]"), *o);
    }
    ArchInstance::new(nl, presets, Vec::new(), g.inputs(), g.outputs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalut_boolfn::{metrics, InputDistribution};

    fn target() -> TruthTable {
        TruthTable::from_fn(8, 8, |x| (x * 7 / 3) % 256).unwrap()
    }

    #[test]
    fn round_out_zeroes_lsbs() {
        let g = target();
        let r = round_out_table(&g, 3).unwrap();
        for x in 0..256u32 {
            assert_eq!(r.eval(x), (g.eval(x) >> 3) << 3);
            assert_eq!(r.eval(x) & 0b111, 0);
        }
    }

    #[test]
    fn round_out_med_grows_with_q() {
        let g = target();
        let d = InputDistribution::uniform(8).unwrap();
        let mut prev = 0.0;
        for q in 1..6 {
            let r = round_out_table(&g, q).unwrap();
            let med = metrics::med(&g, &r, &d).unwrap();
            assert!(med >= prev);
            prev = med;
        }
        // Truncating q LSBs loses on average about (2^q - 1)/2 on a
        // uniformly mixing function.
        let r = round_out_table(&g, 4).unwrap();
        let med = metrics::med(&g, &r, &d).unwrap();
        assert!(med > 5.0 && med < 10.5, "med = {med}");
    }

    #[test]
    fn round_in_is_constant_per_block() {
        let g = target();
        let r = round_in_table(&g, 3).unwrap();
        for x in 0..256u32 {
            assert_eq!(r.eval(x), r.eval(x & !0b111));
        }
    }

    #[test]
    fn round_in_median_beats_first_element_on_monotone_ramp() {
        let g = TruthTable::from_fn(6, 6, |x| x).unwrap();
        let d = InputDistribution::uniform(6).unwrap();
        let r = round_in_table(&g, 2).unwrap();
        let med = metrics::med(&g, &r, &d).unwrap();
        // Block {0,1,2,3} answered by its median element => errors
        // {2,1,0,1} avg 1.0; a first-element table would average 1.5.
        assert!((med - 1.0).abs() < 1e-9);
    }

    #[test]
    fn round_out_hardware_matches_model() {
        let g = target();
        let inst = build_round_out(&g, 3);
        let model = round_out_table(&g, 3).unwrap();
        let mut sim = inst.simulator().unwrap();
        for x in (0..256u32).step_by(5) {
            assert_eq!(inst.read(&mut sim, x), model.eval(x));
        }
    }

    #[test]
    fn round_in_hardware_matches_model() {
        let g = target();
        let inst = build_round_in(&g, 3);
        let model = round_in_table(&g, 3).unwrap();
        let mut sim = inst.simulator().unwrap();
        for x in (0..256u32).step_by(3) {
            assert_eq!(inst.read(&mut sim, x), model.eval(x));
        }
    }

    #[test]
    fn round_in_table_is_much_smaller() {
        let g = target();
        let full = build_round_out(&g, 1);
        let small = build_round_in(&g, 4);
        assert!(small.netlist().total_dffs() * 8 < full.netlist().total_dffs());
    }
}
