//! Reproduces the paper's three worked examples:
//!
//! * **Example 1** (Fig. 1(a)): exact Ashenhurst decomposition with
//!   `V = (0,1,1,0)`, `T = (3,4,2,1)`;
//! * **Example 2** (Fig. 2(a)): the BTO restriction that flips exactly
//!   one cell;
//! * **Example 3** (Fig. 3): a non-disjoint decomposition composed from
//!   two conditional halves via Eq. (1).
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use dalut::prelude::*;
use rand::SeedableRng;

fn table_from_rows(rows: [[u32; 4]; 4]) -> TruthTable {
    TruthTable::from_fn(4, 1, |x| {
        rows[(x & 0b11) as usize][((x >> 2) & 0b11) as usize]
    })
    .expect("4-input table")
}

fn print_chart(f: &TruthTable, p: Partition) {
    println!("        B={:?}", p.bound_vars());
    for row in 0..p.rows() {
        let cells: Vec<String> = (0..p.cols())
            .map(|col| {
                let st = p.scatter_table();
                let x = st.flat_index(row, col) as u32;
                format!("{}", f.eval(x))
            })
            .collect();
        println!("  A={row:02b}  {}", cells.join(" "));
    }
}

fn main() {
    // ------------------------------------------------------------------
    println!("=== Example 1: exact disjoint decomposition (Fig. 1a) ===");
    let f1 = table_from_rows([[0, 1, 1, 0], [1, 0, 0, 1], [1, 1, 1, 1], [0, 0, 0, 0]]);
    let p1 = Partition::new(4, 0b1100).expect("valid partition");
    print_chart(&f1, p1);
    let d = exact_decompose(&f1, p1)
        .expect("dimensions fine")
        .expect("the paper's function decomposes");
    let v: Vec<u32> = d.pattern().iter().map(|&b| u32::from(b)).collect();
    let t: Vec<u8> = d.types().iter().map(|ty| ty.code()).collect();
    println!("pattern vector V = {v:?} (paper: [0,1,1,0])");
    println!("type vector    T = {t:?} (paper: [3,4,2,1])");
    println!(
        "phi({:?}) = {}",
        p1.bound_vars(),
        pattern_to_minterms(d.pattern(), &p1.bound_vars())
    );
    assert_eq!(v, [0, 1, 1, 0]);
    assert_eq!(t, [3, 4, 2, 1]);
    assert_eq!(d.to_truth_table(), f1, "decomposition is exact");

    // ------------------------------------------------------------------
    println!("\n=== Example 2: BTO restriction (Fig. 2a) ===");
    let f2 = table_from_rows([[1, 1, 1, 0], [1, 1, 1, 1], [1, 1, 1, 0], [1, 1, 1, 0]]);
    print_chart(&f2, p1);
    let exact = exact_decompose(&f2, p1)
        .expect("dimensions fine")
        .expect("decomposes exactly");
    println!(
        "exact: V = {:?}, T = {:?}",
        exact
            .pattern()
            .iter()
            .map(|&b| u32::from(b))
            .collect::<Vec<_>>(),
        exact.types().iter().map(|t| t.code()).collect::<Vec<_>>()
    );
    let dist = InputDistribution::uniform(4).expect("valid width");
    let costs = bit_costs(&f2, &f2, 0, &dist, LsbFill::FromApprox).expect("same shape");
    let (err, bto) = opt_for_part_bto(&costs, p1).expect("widths match");
    println!(
        "BTO (all rows type 3): V = {:?}, error = {err} ({} of 16 cells wrong)",
        bto.pattern()
            .iter()
            .map(|&b| u32::from(b))
            .collect::<Vec<_>>(),
        (err * 16.0).round()
    );
    assert!((err - 1.0 / 16.0).abs() < 1e-12, "exactly one wrong cell");

    // ------------------------------------------------------------------
    println!("\n=== Example 3: non-disjoint decomposition (Fig. 3) ===");
    // A 5-input function, partition A = {x3,x4}, B = {x0,x1,x2}; we ask
    // for the best non-disjoint decomposition and show the shared bit and
    // the two conditional halves of Eq. (1).
    let f3 = TruthTable::from_fn(5, 1, |x| {
        u32::from((x.count_ones() % 2 == 0) ^ (x & 0b00110 == 0b00100))
    })
    .expect("5-input table");
    let p3 = Partition::new(5, 0b00111).expect("valid partition");
    let dist5 = InputDistribution::uniform(5).expect("valid width");
    let costs = bit_costs(&f3, &f3, 0, &dist5, LsbFill::FromApprox).expect("same shape");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let (err_nd, nd) = opt_for_part_nd(&costs, p3, OptParams::default(), &mut rng)
        .expect("widths match")
        .expect("|B| >= 2");
    println!("shared bit x_s = x{}", nd.shared());
    println!(
        "phi0 = {}",
        pattern_to_minterms(nd.half0().pattern(), &nd.half0().partition().bound_vars())
    );
    println!(
        "phi1 = {}",
        pattern_to_minterms(nd.half1().pattern(), &nd.half1().partition().bound_vars())
    );
    println!("ND error = {err_nd:.4}");
    // Eq. (1): f = ~xs . F0(phi0, A) + xs . F1(phi1, A) — check the
    // composed bound table against the halves on every input.
    let bt = nd.bound_table();
    let part = nd.partition();
    for x in 0..32u32 {
        let phi = bt[part.col_of(x) as usize];
        let rx = reduce_index(x, nd.shared());
        let expect = if (x >> nd.shared()) & 1 == 1 {
            nd.half1().pattern()[nd.half1().partition().col_of(rx) as usize]
        } else {
            nd.half0().pattern()[nd.half0().partition().col_of(rx) as usize]
        };
        assert_eq!(phi, expect, "Eq. (1) composition holds at x={x:05b}");
    }
    println!("Eq. (1) composition verified on all 32 inputs.");
}
