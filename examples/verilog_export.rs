//! Exports a configured BTO-Normal-ND architecture as structural Verilog
//! — the artefact the paper hands to Synopsys Design Compiler.
//!
//! ```sh
//! cargo run --release --example verilog_export > approx_lut.v
//! ```

use dalut::prelude::*;

fn main() {
    // A small erf approximation so the emitted module stays readable.
    let target = Benchmark::Erf.table(Scale::Reduced(6)).expect("builds");
    let mut params = BsSaParams::fast();
    params.search.bound_size = 3;
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");

    let inst = build_approx_lut(&outcome.config, ArchStyle::BtoNormalNd).expect("maps");
    // Preset-aware export: the initial block loads the table contents.
    let verilog = inst.to_verilog();

    eprintln!(
        "// {} cells, {} DFFs, {} clock domains, MED {:.3}",
        inst.netlist().cell_count(),
        inst.netlist().total_dffs(),
        inst.netlist().domains().len(),
        outcome.med
    );
    println!("{verilog}");
}
