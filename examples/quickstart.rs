//! Quickstart: approximate a quantised cosine with a decomposition-based
//! LUT, inspect the compression and error, and run the synthesised-style
//! hardware model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dalut::prelude::*;

fn main() {
    // A 10-bit-in / 10-bit-out cosine table (the paper uses 16/16; this
    // runs in seconds).
    let target = Benchmark::Cos.table(Scale::Reduced(10)).expect("builds");
    let exact_entries = target.len() * target.outputs();

    // Search with BS-SA and allow the BTO-Normal reconfigurable modes.
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(BsSaParams::fast())
        .policy(ArchPolicy::bto_normal_paper())
        .run()
        .expect("search succeeds");

    let (bto, normal, nd) = outcome.config.mode_counts();
    println!("target           : cos(x), {} entries exact", exact_entries);
    println!(
        "approx LUT       : {} entries",
        outcome.config.lut_entries()
    );
    println!(
        "compression      : {:.1}x",
        exact_entries as f64 / outcome.config.lut_entries() as f64
    );
    println!("mean error dist. : {:.3} LSB", outcome.med);
    println!("modes (BTO/N/ND) : {bto}/{normal}/{nd}");

    // Map onto the BTO-Normal architecture and read a few samples.
    let inst = build_approx_lut(&outcome.config, ArchStyle::BtoNormal).expect("maps");
    let mut sim = inst.simulator().expect("acyclic netlist");
    println!("\n x      exact  approx(hw)");
    for x in [0u32, 128, 256, 512, 768, 1023] {
        let hw = inst.read(&mut sim, x);
        println!("{x:>5}  {:>6}  {:>6}", target.eval(x), hw);
        assert_eq!(hw, outcome.config.eval(x), "hardware matches the model");
    }

    // Characterise the hardware like the paper's Fig. 5 flow.
    let reads: Vec<u32> = (0..1024).collect();
    let report = characterize(&inst, &reads, &CellLibrary::nangate45(), 1.5)
        .expect("characterisation succeeds");
    println!("\narea             : {:.0} um^2", report.area_um2);
    println!("critical path    : {:.3} ns", report.critical_path_ns);
    println!("energy per read  : {:.0} fJ", report.energy_per_read_fj);
}
