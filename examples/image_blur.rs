//! Application study: Gaussian-style image blur driven by an approximate
//! multiplier LUT — the kind of error-tolerant workload the paper's
//! introduction motivates.
//!
//! A synthetic 64×64 grey-scale image is convolved with a 3×3 kernel,
//! once with exact multiplies and once with the decomposition-based
//! approximate multiplier; we report per-pixel error and PSNR. A PSNR
//! above ~35 dB is visually indistinguishable.
//!
//! ```sh
//! cargo run --release --example image_blur
//! ```

use dalut::prelude::*;

const W: usize = 64;
const H: usize = 64;
const KERNEL: [[u32; 3]; 3] = [[1, 3, 1], [3, 5, 3], [1, 3, 1]];
const KERNEL_SUM: u32 = 21;

/// Synthetic test card: smooth gradients plus circles and an edge.
fn test_image() -> Vec<u8> {
    let mut img = vec![0u8; W * H];
    for y in 0..H {
        for x in 0..W {
            let fx = x as f64 / W as f64;
            let fy = y as f64 / H as f64;
            let mut v = 96.0 + 96.0 * fx + 40.0 * (fy * 8.0).sin();
            let (cx, cy) = (0.7 * W as f64, 0.3 * H as f64);
            let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
            if d < 10.0 {
                v = 230.0;
            }
            if x > W / 2 && y > 3 * H / 4 {
                v *= 0.35;
            }
            img[y * W + x] = v.clamp(0.0, 255.0) as u8;
        }
    }
    img
}

fn convolve(img: &[u8], mul: impl Fn(u32, u32) -> u32) -> Vec<u8> {
    let mut out = vec![0u8; W * H];
    for y in 0..H {
        for x in 0..W {
            let mut acc = 0u32;
            for (ky, krow) in KERNEL.iter().enumerate() {
                for (kx, &kw) in krow.iter().enumerate() {
                    let sy = (y + ky).saturating_sub(1).min(H - 1);
                    let sx = (x + kx).saturating_sub(1).min(W - 1);
                    acc += mul(u32::from(img[sy * W + sx]), kw);
                }
            }
            out[y * W + x] = (acc / KERNEL_SUM).min(255) as u8;
        }
    }
    out
}

fn main() {
    // Approximate 8x4 multiplier: pixel (8 bits) x kernel weight (4 bits)
    // is all the blur needs; stitch to a 12-bit-input, 12-bit-output LUT.
    let target = TruthTable::from_fn(12, 12, |x| (x & 0xFF) * (x >> 8)).expect("fits");

    // The MED definition weights errors by the input occurrence
    // probability p_X. The blur only ever multiplies by the kernel
    // weights {1, 3, 5} (with multiplicities 4/4/1), so tell the search
    // exactly that — the approximation spends its error budget where the
    // application actually looks.
    let mut weights = vec![0.0f64; 1 << 12];
    for (w, mult) in [(1u32, 4.0), (3, 4.0), (5, 1.0)] {
        for a in 0..256u32 {
            weights[(a | (w << 8)) as usize] = mult;
        }
    }
    let dist = InputDistribution::from_weights(weights).expect("valid weights");

    let mut params = BsSaParams::fast();
    params.search.bound_size = 7;
    params.partition_limit = 30;
    let outcome = ApproxLutBuilder::new(&target)
        .distribution(dist)
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");
    let approx = outcome.config.to_truth_table();
    println!(
        "approximate 8x4 multiplier: MED {:.2}, {} LUT entries (exact: {})",
        outcome.med,
        outcome.config.lut_entries(),
        target.len() * target.outputs(),
    );

    // Contrast: the same search budget optimised for *uniform* inputs
    // wastes its error budget on multiplier rows the blur never uses.
    let mut uparams = BsSaParams::fast();
    uparams.search.bound_size = 7;
    uparams.partition_limit = 30;
    let uniform_outcome = ApproxLutBuilder::new(&target)
        .bs_sa(uparams)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");
    let uniform_approx = uniform_outcome.config.to_truth_table();

    let img = test_image();
    let exact = convolve(&img, |a, b| a * b);
    let appr = convolve(&img, |a, b| approx.eval(a | (b << 8)));
    let appr_uniform = convolve(&img, |a, b| uniform_approx.eval(a | (b << 8)));

    let psnr_of = |candidate: &[u8]| -> (u32, f64) {
        let mut max_err = 0u32;
        let mut sq_sum = 0f64;
        for (&e, &a) in exact.iter().zip(candidate) {
            let d = u32::from(e.abs_diff(a));
            max_err = max_err.max(d);
            sq_sum += f64::from(d * d);
        }
        let mse = sq_sum / (W * H) as f64;
        let psnr = if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        };
        (max_err, psnr)
    };
    let (max_err, psnr) = psnr_of(&appr);
    let (max_err_u, psnr_u) = psnr_of(&appr_uniform);
    println!(
        "blurred {W}x{H} image (distribution-aware): max pixel error {max_err}, PSNR {psnr:.1} dB"
    );
    println!("blurred {W}x{H} image (uniform-optimised):  max pixel error {max_err_u}, PSNR {psnr_u:.1} dB");
    assert!(psnr > 30.0, "application-level quality must remain high");
    assert!(
        psnr >= psnr_u,
        "knowing the workload distribution must not hurt"
    );
    println!(
        "quality verdict: {}",
        if psnr > 35.0 {
            "visually indistinguishable"
        } else {
            "acceptable"
        }
    );
}
