//! Accuracy–energy trade-off (a miniature of the paper's Fig. 6): sweep
//! the per-bit (#BTO, #Normal, #ND) mode allocation of a BTO-Normal-ND
//! architecture for `exp(x)` and print the frontier.
//!
//! ```sh
//! cargo run --release --example energy_tradeoff
//! ```

use dalut::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let target = Benchmark::Exp.table(Scale::Reduced(8)).expect("builds");
    let dist = InputDistribution::uniform(8).expect("valid width");
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    params.partition_limit = 20;

    let outcome = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");
    let options = outcome.mode_options.expect("ND policy records options");
    let points = mode_sweep(&target, &dist, &options).expect("sweep succeeds");

    let lib = CellLibrary::nangate45();
    let mut rng = StdRng::seed_from_u64(1);
    let reads: Vec<u32> = (0..512).map(|_| rng.random_range(0..256)).collect();

    println!("(#BTO,#Normal,#ND)   MED      energy fJ/read");
    let mut last_energy = f64::NEG_INFINITY;
    for p in &points {
        let inst = build_approx_lut(&p.config, ArchStyle::BtoNormalNd).expect("maps");
        let rep = characterize(&inst, &reads, &lib, 1.5).expect("characterises");
        let (a, b, c) = p.mode_counts;
        println!(
            "({a:>2},{b:>2},{c:>2})           {:<8.3} {:.0}",
            p.med, rep.energy_per_read_fj
        );
        // Activating more free tables costs energy, monotonically.
        assert!(rep.energy_per_read_fj > last_energy);
        last_energy = rep.energy_per_read_fj;
    }
    println!(
        "\nfrontier spans {:.3} .. {:.3} MED over {} configurations",
        points.last().expect("non-empty").med,
        points.first().expect("non-empty").med,
        points.len()
    );
}
