//! Runtime reprogramming: the paper's tables are "RAMs consisting of D
//! flip-flops", so one physical approximate LUT can be *rewritten* to
//! serve different functions. This example builds a writable bound table
//! in hardware, serves a BTO-mode `cos` approximation, then reprograms
//! the same silicon to an `erf` approximation — no rebuild, only writes.
//!
//! ```sh
//! cargo run --release --example runtime_reprogram
//! ```

use dalut::decomp::{bit_costs, opt_for_part_bto, LsbFill};
use dalut::hw::dff_lut_writable;
use dalut::netlist::{Netlist, Simulator, ROOT_DOMAIN};
use dalut::prelude::*;

const N: usize = 8;

/// Finds the best BTO pattern for the MSB of a benchmark under a fixed
/// partition (the contents we will store / rewrite).
fn bto_pattern(bench: Benchmark, part: Partition) -> (f64, Vec<bool>) {
    let target = bench.table(Scale::Reduced(N)).expect("builds");
    let dist = InputDistribution::uniform(N).expect("valid");
    let bit = target.outputs() - 1;
    let costs = bit_costs(&target, &target, bit, &dist, LsbFill::Accurate).expect("shape");
    let (err, bto) = opt_for_part_bto(&costs, part).expect("widths match");
    (err, bto.pattern().to_vec())
}

fn main() {
    // One shared physical geometry: bound set = the 5 high input bits
    // (the coarse value of x, which is what a single-output-bit BTO
    // approximation keys on).
    let part = Partition::new(N, 0b1111_1000).expect("valid");
    let (err_cos, pat_cos) = bto_pattern(Benchmark::Cos, part);
    let (err_erf, pat_erf) = bto_pattern(Benchmark::Erf, part);
    println!("cos MSB BTO error: {err_cos:.4}; erf MSB BTO error: {err_erf:.4}");

    // Hardware: one writable 32-entry bound table.
    let mut nl = Netlist::new("reprogrammable_bound_table");
    let x = nl.input_bus("x", N);
    let wdata = nl.input("wdata");
    let wen = nl.input("wen");
    let waddr = nl.input_bus("waddr", part.bound_size());
    let bound_nets: Vec<_> = part.bound_vars().iter().map(|&v| x[v as usize]).collect();
    let lut = dff_lut_writable(
        &mut nl,
        &pat_cos,
        &bound_nets,
        wdata,
        wen,
        &waddr,
        ROOT_DOMAIN,
    );
    nl.output("y", lut.output);
    println!(
        "hardware: {} cells, {} storage DFFs (writable)",
        nl.cell_count(),
        nl.total_dffs()
    );

    let mut sim = Simulator::new(&nl).expect("acyclic");
    for &(q, v) in &lut.presets {
        sim.preset_dff(q, v).expect("LUT presets target DFFs");
    }

    // Input word layout: [x | wdata | wen | waddr].
    let b = part.bound_size();
    let low_free = part.free_size() as u64; // bound bits sit above the free bits
    let read_bit = |sim: &mut Simulator, col: u64| -> bool {
        // y is the only output, so eval_word returns it in bit 0; the
        // bound column occupies the high input bits.
        sim.eval_word(col << low_free) == 1
    };
    let write_bit = |sim: &mut Simulator, addr: u64, v: bool| {
        let w = (u64::from(v) << N) | (1u64 << (N + 1)) | (addr << (N + 2));
        sim.eval_word(w);
    };

    // Phase 1: serving cos.
    let serving_cos: Vec<bool> = (0..1u64 << b).map(|c| read_bit(&mut sim, c)).collect();
    assert_eq!(serving_cos, pat_cos, "hardware serves the cos pattern");
    println!(
        "phase 1: serving cos MSB — verified on all {} bound columns",
        1 << b
    );

    // Phase 2: reprogram in-place to erf (write only the differing bits).
    let mut writes = 0;
    for (addr, (&old, &new)) in pat_cos.iter().zip(&pat_erf).enumerate() {
        if old != new {
            write_bit(&mut sim, addr as u64, new);
            writes += 1;
        }
    }
    let serving_erf: Vec<bool> = (0..1u64 << b).map(|c| read_bit(&mut sim, c)).collect();
    assert_eq!(serving_erf, pat_erf, "hardware now serves the erf pattern");
    println!("phase 2: reprogrammed to erf MSB with {writes} single-bit writes — verified");
}
