//! Runtime reprogramming: the paper's tables are "RAMs consisting of D
//! flip-flops", so one physical approximate LUT can be *rewritten* to
//! serve different functions. This example reprograms the same silicon
//! from a BTO-mode `cos` approximation to an `erf` approximation — no
//! rebuild, only writes — at both levels the library models it:
//!
//! 1. gate level, through [`WritableBoundTable`]'s address decoder and
//!    single-bit write port, and
//! 2. instance level, through [`ArchInstance::rewrite_bound_table`],
//!    the preset-space diff write a runtime controller issues (this is
//!    what `dalut-runtime`'s scrub/hot-swap paths are built on).
//!
//! ```sh
//! cargo run --release --example runtime_reprogram
//! ```
//!
//! [`WritableBoundTable`]: dalut::hw::WritableBoundTable
//! [`ArchInstance::rewrite_bound_table`]: dalut::hw::ArchInstance::rewrite_bound_table

use dalut::core::{ApproxLutConfig, BitConfig};
use dalut::decomp::{bit_costs, opt_for_part_bto, AnyDecomp, BtoDecomp, LsbFill};
use dalut::hw::{build_approx_lut, ArchStyle, WritableBoundTable};
use dalut::prelude::*;

const N: usize = 8;

/// Finds the best BTO pattern for the MSB of a benchmark under a fixed
/// partition (the contents we will store / rewrite).
fn bto_pattern(bench: Benchmark, part: Partition) -> (f64, Vec<bool>) {
    let target = bench.table(Scale::Reduced(N)).expect("builds");
    let dist = InputDistribution::uniform(N).expect("valid");
    let bit = target.outputs() - 1;
    let costs = bit_costs(&target, &target, bit, &dist, LsbFill::Accurate).expect("shape");
    let (err, bto) = opt_for_part_bto(&costs, part).expect("widths match");
    (err, bto.pattern().to_vec())
}

/// A one-bit BTO configuration storing `pattern` under `part`.
fn one_bit_config(part: Partition, pattern: &[bool]) -> ApproxLutConfig {
    let bits = vec![BitConfig {
        bit: 0,
        decomp: AnyDecomp::Bto(BtoDecomp::new(part, pattern.to_vec()).expect("shape")),
        expected_error: 0.0,
    }];
    ApproxLutConfig::new(N, 1, bits).expect("valid")
}

fn main() {
    // One shared physical geometry: bound set = the 5 high input bits
    // (the coarse value of x, which is what a single-output-bit BTO
    // approximation keys on).
    let part = Partition::new(N, 0b1111_1000).expect("valid");
    let (err_cos, pat_cos) = bto_pattern(Benchmark::Cos, part);
    let (err_erf, pat_erf) = bto_pattern(Benchmark::Erf, part);
    println!("cos MSB BTO error: {err_cos:.4}; erf MSB BTO error: {err_erf:.4}");

    // --- Gate level: one writable 32-entry bound table. ---------------
    let hw = WritableBoundTable::new(N, part, &pat_cos).expect("builds");
    println!(
        "hardware: {} cells, {} storage DFFs (writable)",
        hw.netlist().cell_count(),
        hw.netlist().total_dffs()
    );
    let mut sim = hw.simulator().expect("acyclic");

    // Phase 1: serving cos.
    assert_eq!(hw.read_all(&mut sim), pat_cos, "serves the cos pattern");
    println!(
        "phase 1: serving cos MSB — verified on all {} bound columns",
        hw.entries()
    );

    // Phase 2: reprogram in-place to erf (write only the differing bits).
    let writes = hw.reprogram(&mut sim, &pat_erf).expect("shape");
    assert_eq!(hw.read_all(&mut sim), pat_erf, "now serves the erf pattern");
    println!("phase 2: reprogrammed to erf MSB with {writes} single-bit writes — verified");

    // --- Instance level: the same diff write in preset space. ---------
    // This is the path a runtime controller takes: it never touches the
    // netlist, only the stored contents of a built instance.
    let mut inst =
        build_approx_lut(&one_bit_config(part, &pat_cos), ArchStyle::BtoNormal).expect("builds");
    let inst_writes = inst.rewrite_bound_table(0, &pat_erf).expect("shape");
    assert_eq!(
        inst_writes, writes,
        "instance-level diff write matches the gate-level write count"
    );
    assert_eq!(inst.bound_table(0).expect("bit 0"), pat_erf);
    // Rewriting to the contents already stored is free.
    assert_eq!(inst.rewrite_bound_table(0, &pat_erf).expect("shape"), 0);
    println!(
        "phase 3: ArchInstance::rewrite_bound_table issued the same {inst_writes} writes — \
         the runtime controller's scrub/hot-swap primitive"
    );
}
