//! Domain example: an approximate 6×6 multiplier for error-tolerant DSP.
//!
//! The paper's motivation (§I) is replacing arithmetic in error-tolerant
//! applications with small LUTs. This example approximates an unsigned
//! multiplier, then evaluates *application-level* quality on a small
//! dot-product workload (the kernel of filtering/convolution): the
//! approximate multiplier's relative error on accumulated products stays
//! small even though individual products err.
//!
//! ```sh
//! cargo run --release --example approx_multiplier
//! ```

use dalut::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 6x6 -> 12-bit multiplier (the paper's instance is 8x8).
    let target = Benchmark::Multiplier
        .table(Scale::Reduced(12))
        .expect("builds");
    let dist = InputDistribution::uniform(12).expect("valid width");

    let mut params = BsSaParams::fast();
    params.search.bound_size = 7;
    params.partition_limit = 40;
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");
    let approx = outcome.config.to_truth_table();

    println!(
        "multiplier: exact {} entries -> approx {} entries ({:.1}x smaller)",
        target.len() * target.outputs(),
        outcome.config.lut_entries(),
        (target.len() * target.outputs()) as f64 / outcome.config.lut_entries() as f64,
    );
    println!("MED = {:.2} (of a 12-bit product)", outcome.med);
    let report = dalut::boolfn::metrics::error_report(&target, &approx, &dist).expect("same shape");
    println!(
        "error rate = {:.1}%, max error distance = {}",
        report.error_rate * 100.0,
        report.max_ed
    );

    // Application-level quality: 64-tap dot products over random data.
    let mut rng = StdRng::seed_from_u64(42);
    let mut worst_rel = 0.0f64;
    let mut sum_rel = 0.0f64;
    const TRIALS: usize = 200;
    for _ in 0..TRIALS {
        let mut exact_acc = 0u64;
        let mut approx_acc = 0u64;
        for _ in 0..64 {
            let a: u32 = rng.random_range(0..64);
            let b: u32 = rng.random_range(0..64);
            let x = a | (b << 6);
            exact_acc += u64::from(target.eval(x));
            approx_acc += u64::from(approx.eval(x));
        }
        let rel = (exact_acc as f64 - approx_acc as f64).abs() / (exact_acc.max(1) as f64);
        worst_rel = worst_rel.max(rel);
        sum_rel += rel;
    }
    println!("\n64-tap dot products ({TRIALS} trials):");
    println!(
        "  mean relative error  = {:.3}%",
        sum_rel / TRIALS as f64 * 100.0
    );
    println!("  worst relative error = {:.3}%", worst_rel * 100.0);
    let mean_rel = sum_rel / TRIALS as f64;
    assert!(mean_rel < 0.05, "accumulated error should stay below 5%");
}
