//! Invariants the paper's claims rest on, checked across crates: the
//! mode-energy ordering that powers Fig. 5/6, the error ordering of the
//! decomposition modes, and the Verilog export of real configurations.

use dalut::decomp::{
    bit_costs, opt_for_part, opt_for_part_bto, opt_for_part_nd, LsbFill, OptParams,
};
use dalut::netlist::area_um2;
use dalut::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cos8() -> (TruthTable, InputDistribution) {
    (
        Benchmark::Cos.table(Scale::Reduced(8)).expect("builds"),
        InputDistribution::uniform(8).expect("valid"),
    )
}

/// Per fixed partition, the three modes have a strict expressive-power
/// ordering: BTO ⊂ Normal ⊂ ND, so their optimised errors must be
/// monotone (our optimisers seed accordingly, making this exact).
#[test]
fn mode_error_ordering_per_partition() {
    let (target, dist) = cos8();
    for bit in [0usize, 3, 7] {
        let costs = bit_costs(&target, &target, bit, &dist, LsbFill::Accurate).expect("same shape");
        for mask in [0b0001_1101u32, 0b1110_0010, 0b0110_1001] {
            let p = Partition::new(8, mask).expect("valid");
            let mut rng = StdRng::seed_from_u64(9);
            let (e_bto, _) = opt_for_part_bto(&costs, p).unwrap();
            let (e_norm, _) = opt_for_part(&costs, p, OptParams::default(), &mut rng).unwrap();
            let (e_nd, _) = opt_for_part_nd(&costs, p, OptParams::default(), &mut rng)
                .unwrap()
                .expect("|B|>1");
            assert!(e_norm <= e_bto + 1e-12, "bit {bit} mask {mask:08b}");
            assert!(e_nd <= e_norm + 1e-9, "bit {bit} mask {mask:08b}");
        }
    }
}

/// The architecture area ordering behind Fig. 5's +29% area bar:
/// DALTA < BTO-Normal < BTO-Normal-ND for the same normal-mode config.
#[test]
fn architecture_area_ordering() {
    let (target, _) = cos8();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(params)
        .run()
        .expect("search succeeds");
    let lib = CellLibrary::nangate45();
    let dalta = build_approx_lut(&outcome.config, ArchStyle::Dalta).expect("maps");
    let bn = build_approx_lut(&outcome.config, ArchStyle::BtoNormal).expect("maps");
    let bnnd = build_approx_lut(&outcome.config, ArchStyle::BtoNormalNd).expect("maps");
    let a_dalta = area_um2(dalta.netlist(), &lib);
    let a_bn = area_um2(bn.netlist(), &lib);
    let a_bnnd = area_um2(bnnd.netlist(), &lib);
    assert!(a_dalta < a_bn, "mode mux + ICG add area");
    assert!(a_bn < a_bnnd, "second free table adds area");
    // The ND architecture's overhead is in the right ballpark (the paper
    // reports +29% over DALTA at its geometry).
    assert!(a_bnnd / a_dalta > 1.1 && a_bnnd / a_dalta < 1.9);
}

/// The energy ordering behind Fig. 6: on the same architecture, a config
/// with more gated tables costs less energy for the same read trace.
#[test]
fn more_gating_means_less_energy() {
    let (target, dist) = cos8();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    let outcome = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");
    let options = outcome.mode_options.expect("recorded");
    let points = mode_sweep(&target, &dist, &options).expect("sweep");
    let lib = CellLibrary::nangate45();
    let reads: Vec<u32> = (0..256).collect();
    let first = build_approx_lut(
        &points.first().expect("non-empty").config,
        ArchStyle::BtoNormalNd,
    )
    .expect("maps");
    let last = build_approx_lut(
        &points.last().expect("non-empty").config,
        ArchStyle::BtoNormalNd,
    )
    .expect("maps");
    let e_first = characterize(&first, &reads, &lib, 1.5)
        .expect("ok")
        .energy_per_read_fj;
    let e_last = characterize(&last, &reads, &lib, 1.5)
        .expect("ok")
        .energy_per_read_fj;
    assert!(
        e_first < e_last,
        "all-BTO ({e_first}) must be cheaper than all-ND ({e_last})"
    );
}

/// Exported Verilog of a real configuration contains the expected
/// structure: a module, clock gating for BTO bits, and one output per
/// target bit.
#[test]
fn verilog_export_of_searched_config() {
    let (target, _) = cos8();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_paper())
        .run()
        .expect("search succeeds");
    let inst = build_approx_lut(&outcome.config, ArchStyle::BtoNormal).expect("maps");
    let v = to_verilog(inst.netlist());
    assert!(v.contains("module approx_lut_bto_normal"));
    assert!(v.contains("always @(posedge clk)"));
    for k in 0..target.outputs() {
        assert!(v.contains(&format!("output y_{k}_;")), "output bit {k}");
    }
    // One enable port per free table.
    let enables = v.matches("input en_free").count();
    assert_eq!(enables, target.outputs());
}

/// Fig. 5 reports *ratios* between architectures; those must be
/// invariant under uniform technology scaling of the cell library
/// (absolute fJ/µm² values are substitutions, the ratios are the claim).
#[test]
fn architecture_ratios_invariant_under_library_scaling() {
    let (target, _) = cos8();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(params)
        .run()
        .expect("search succeeds");
    let lib = CellLibrary::nangate45();
    let scaled = lib.scaled(0.5, 0.7, 3.0, 3.0); // e.g. a smaller node
    let dalta = build_approx_lut(&outcome.config, ArchStyle::Dalta).expect("maps");
    let bn = build_approx_lut(&outcome.config, ArchStyle::BtoNormal).expect("maps");
    let reads: Vec<u32> = (0..128).collect();
    let ratio = |l: &CellLibrary| {
        let a = characterize(&dalta, &reads, l, 2.0).expect("ok");
        let b = characterize(&bn, &reads, l, 2.0).expect("ok");
        (
            b.area_um2 / a.area_um2,
            b.energy_per_read_fj / a.energy_per_read_fj,
        )
    };
    let (ra1, re1) = ratio(&lib);
    let (ra2, re2) = ratio(&scaled);
    assert!(
        (ra1 - ra2).abs() < 1e-9,
        "area ratio changed: {ra1} vs {ra2}"
    );
    assert!(
        (re1 - re2).abs() < 1e-9,
        "energy ratio changed: {re1} vs {re2}"
    );
}

/// Full backend round-trip: a searched BTO-Normal-ND instance exported
/// as Verilog (with ROM presets) and interpreted by the miniature
/// Verilog simulator must reproduce the software model exactly —
/// including bits whose free tables are gated off (their enable ports
/// driven low).
#[test]
fn verilog_roundtrip_of_searched_architecture() {
    use dalut::netlist::VerilogModule;
    let (target, dist) = cos8();
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    let outcome = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");
    let inst = build_approx_lut(&outcome.config, ArchStyle::BtoNormalNd).expect("maps");

    let module = VerilogModule::parse(&inst.to_verilog()).expect("emitted subset parses");
    let mut vs = module.interpreter();

    // Enable ports precede the data inputs in the port order; drive each
    // according to the instance's gating decisions.
    let disabled: std::collections::HashSet<usize> =
        inst.disabled_domains().iter().map(|d| d.index()).collect();
    let enables: Vec<bool> = (1..inst.netlist().domains().len())
        .map(|d| !disabled.contains(&d))
        .collect();
    assert_eq!(
        module.inputs().len(),
        enables.len() + target.inputs(),
        "port count: enables + data"
    );

    for x in (0..256u32).step_by(7) {
        let mut vin = enables.clone();
        vin.extend((0..target.inputs()).map(|i| (x >> i) & 1 == 1));
        let vout = vs.step(&vin);
        let word = vout
            .iter()
            .enumerate()
            .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
        assert_eq!(word, outcome.config.eval(x), "x = {x:#04x}");
    }
}

/// The round-trip the paper's Table II geomean runs on: reported search
/// errors match independent recomputation for both algorithms on several
/// benchmarks.
#[test]
fn search_meds_are_faithful_across_benchmarks() {
    for (i, bench) in [Benchmark::Erf, Benchmark::BrentKung, Benchmark::Forwardk2j]
        .into_iter()
        .enumerate()
    {
        let target = bench.table(Scale::Reduced(8)).expect("builds");
        let dist = InputDistribution::uniform(8).expect("valid");
        let mut dp = DaltaParams::fast();
        dp.search.bound_size = 5;
        dp.search.seed = i as u64;
        let out = ApproxLutBuilder::new(&target)
            .distribution(dist.clone())
            .dalta(dp)
            .run()
            .expect("runs");
        let direct = dalut::boolfn::metrics::med(&target, &out.config.to_truth_table(), &dist)
            .expect("same shape");
        assert!((out.med - direct).abs() < 1e-12, "{bench}");
    }
}
