//! End-to-end integration: benchmark function → search → configuration →
//! hardware netlist → functional equivalence, across crate boundaries.

use dalut::prelude::*;

/// Runs the full pipeline for one benchmark and architecture policy and
/// checks that the hardware realises the searched configuration exactly.
fn pipeline(bench: Benchmark, policy: ArchPolicy, style: ArchStyle, seed: u64) {
    let target = bench.table(Scale::Reduced(8)).expect("benchmark builds");
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    params.search.seed = seed;
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(params)
        .policy(policy)
        .run()
        .expect("search succeeds");

    // The reported MED is the true MED of the materialised config.
    let dist = InputDistribution::uniform(8).expect("valid width");
    let recomputed = outcome.config.med(&target, &dist).expect("same shape");
    assert!((outcome.med - recomputed).abs() < 1e-12);

    // The hardware model matches the software model on every input.
    let inst = build_approx_lut(&outcome.config, style).expect("config maps onto style");
    let mut sim = inst.simulator().expect("acyclic");
    for x in 0..256u32 {
        assert_eq!(
            inst.read(&mut sim, x),
            outcome.config.eval(x),
            "{bench} x={x:08b} ({style:?})"
        );
    }
}

#[test]
fn cos_normal_only_on_dalta_architecture() {
    pipeline(Benchmark::Cos, ArchPolicy::NormalOnly, ArchStyle::Dalta, 1);
}

#[test]
fn exp_bto_normal_on_bto_normal_architecture() {
    pipeline(
        Benchmark::Exp,
        ArchPolicy::bto_normal_paper(),
        ArchStyle::BtoNormal,
        2,
    );
}

#[test]
fn multiplier_full_policy_on_nd_architecture() {
    pipeline(
        Benchmark::Multiplier,
        ArchPolicy::bto_normal_nd_paper(),
        ArchStyle::BtoNormalNd,
        3,
    );
}

#[test]
fn inversek2j_non_continuous_on_nd_architecture() {
    // The non-continuous benchmark the Taylor-based methods cannot
    // handle: decomposition must still work.
    pipeline(
        Benchmark::Inversek2j,
        ArchPolicy::bto_normal_nd_paper(),
        ArchStyle::BtoNormalNd,
        4,
    );
}

#[test]
fn compression_is_substantial_at_paper_geometry() {
    // With the paper's n = 16, b = 9 per-bit geometry, the decomposition
    // stores 2^9 + 2^8 = 768 entries instead of 65536: an 85x reduction.
    let per_bit = (1usize << 9) + (1usize << 8);
    assert!(65536 / per_bit >= 85);
}

#[test]
fn dalta_and_bssa_agree_on_problem_dimensions() {
    let target = Benchmark::Tan.table(Scale::Reduced(8)).expect("builds");
    let dist = InputDistribution::uniform(8).expect("valid width");
    let mut dp = DaltaParams::fast();
    dp.search.bound_size = 5;
    let d = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .dalta(dp)
        .run()
        .expect("dalta runs");
    let mut bp = BsSaParams::fast();
    bp.search.bound_size = 5;
    let b = ApproxLutBuilder::new(&target)
        .distribution(dist.clone())
        .bs_sa(bp)
        .policy(ArchPolicy::NormalOnly)
        .run()
        .expect("bs-sa runs");
    assert_eq!(d.config.inputs(), b.config.inputs());
    assert_eq!(d.config.outputs(), b.config.outputs());
    // Every bit of both configs uses the configured bound size.
    for cfg in [&d.config, &b.config] {
        for bit in cfg.bits() {
            assert_eq!(bit.decomp.partition().bound_size(), 5);
        }
    }
}

#[test]
fn searched_config_round_trips_through_json() {
    let target = Benchmark::Ln.table(Scale::Reduced(8)).expect("builds");
    let mut params = BsSaParams::fast();
    params.search.bound_size = 5;
    let outcome = ApproxLutBuilder::new(&target)
        .bs_sa(params)
        .policy(ArchPolicy::bto_normal_nd_paper())
        .run()
        .expect("search succeeds");
    let json = serde_json::to_string(&outcome.config).expect("serialises");
    let back: ApproxLutConfig = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back, outcome.config);
    // The deserialised config still drives hardware generation.
    let inst = build_approx_lut(&back, ArchStyle::BtoNormalNd).expect("maps");
    let mut sim = inst.simulator().expect("acyclic");
    for x in (0..256u32).step_by(17) {
        assert_eq!(inst.read(&mut sim, x), outcome.config.eval(x));
    }
}
