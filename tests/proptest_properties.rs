//! Property-based tests (proptest) over the cross-crate invariants.

use dalut::decomp::{
    bit_costs, column_error, opt_for_part, opt_for_part_bto, splice_bit, AnyDecomp, LsbFill,
    OptParams,
};
use dalut::hw::lut::dff_lut;
use dalut::netlist::{Netlist, Simulator, ROOT_DOMAIN};
use dalut::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_table(n: usize, m: usize) -> impl Strategy<Value = TruthTable> {
    proptest::collection::vec(0u32..(1 << m), 1usize << n)
        .prop_map(move |v| TruthTable::from_values(n, m, v).expect("valid values"))
}

fn arb_partition(n: usize) -> impl Strategy<Value = Partition> {
    (1u32..((1 << n) - 1))
        .prop_filter_map("proper subset", move |mask| Partition::new(n, mask).ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reported OptForPart error always equals the MED of splicing the
    /// materialised decomposition into the approximation.
    #[test]
    fn opt_for_part_error_is_faithful(
        g in arb_table(6, 4),
        part in arb_partition(6),
        bit in 0usize..4,
        seed in 0u64..1000,
    ) {
        let dist = InputDistribution::uniform(6).expect("valid");
        let costs = bit_costs(&g, &g, bit, &dist, LsbFill::FromApprox).expect("shape");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (err, d) = opt_for_part(&costs, part, OptParams::fast(), &mut rng).unwrap();
        // Column-level check...
        prop_assert!((column_error(&costs, &d.to_bit_column()) - err).abs() < 1e-12);
        // ...and through the full MED metric.
        let spliced = splice_bit(&g, bit, &AnyDecomp::Normal(d));
        let med = dalut::boolfn::metrics::med(&g, &spliced, &dist).expect("shape");
        prop_assert!((med - err).abs() < 1e-12);
    }

    /// Normal-mode optimisation never loses to the BTO restriction, and
    /// both respect the per-cell ideal lower bound.
    #[test]
    fn mode_ordering_and_lower_bound(
        g in arb_table(6, 3),
        part in arb_partition(6),
        bit in 0usize..3,
    ) {
        let dist = InputDistribution::uniform(6).expect("valid");
        let costs = bit_costs(&g, &g, bit, &dist, LsbFill::FromApprox).expect("shape");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (e_norm, _) = opt_for_part(&costs, part, OptParams::fast(), &mut rng).unwrap();
        let (e_bto, _) = opt_for_part_bto(&costs, part).unwrap();
        prop_assert!(e_norm <= e_bto + 1e-12);
        prop_assert!(e_norm >= costs.ideal_error() - 1e-12);
    }

    /// Any stored bit pattern reads back exactly through the DFF-RAM LUT
    /// netlist (the hardware substrate is a faithful memory).
    #[test]
    fn dff_lut_reads_back_any_contents(
        contents in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let mut nl = Netlist::new("prop_lut");
        let addr = nl.input_bus("a", 4);
        let lut = dff_lut(&mut nl, &contents, &addr, ROOT_DOMAIN);
        nl.output("y", lut.output);
        let mut sim = Simulator::new(&nl).expect("acyclic");
        for &(q, v) in &lut.presets {
            sim.preset_dff(q, v).expect("LUT presets target DFFs");
        }
        for (x, &want) in contents.iter().enumerate() {
            prop_assert_eq!(sim.eval_word(x as u64) == 1, want);
        }
    }

    /// MED is a metric-like quantity: zero iff equal tables (under a
    /// full-support distribution), symmetric, and satisfies the triangle
    /// inequality.
    #[test]
    fn med_triangle_inequality(
        a in arb_table(5, 4),
        b in arb_table(5, 4),
        c in arb_table(5, 4),
    ) {
        use dalut::boolfn::metrics::med;
        let dist = InputDistribution::uniform(5).expect("valid");
        let ab = med(&a, &b, &dist).expect("shape");
        let bc = med(&b, &c, &dist).expect("shape");
        let ac = med(&a, &c, &dist).expect("shape");
        prop_assert!(ac <= ab + bc + 1e-9);
        prop_assert!((ab - med(&b, &a, &dist).expect("shape")).abs() < 1e-12);
        prop_assert_eq!(med(&a, &a, &dist).expect("shape"), 0.0);
        if ab == 0.0 {
            prop_assert_eq!(&a, &b);
        }
    }

    /// Quantised builders are monotone-preserving: a monotone real
    /// function stays monotone after quantisation.
    #[test]
    fn quantisation_preserves_monotonicity(scale in 0.1f64..10.0) {
        let q = QuantizedFn::new(8, 8, 0.0, 1.0, 0.0, scale);
        let t = q.build(|x| scale * x * x).expect("builds");
        let mut prev = 0;
        for x in 0..256u32 {
            let v = t.eval(x);
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Splicing a bit column never changes other bits of the function.
    #[test]
    fn splice_bit_is_local(
        g in arb_table(5, 4),
        part in arb_partition(5),
        bit in 0usize..4,
    ) {
        let pattern: Vec<bool> = (0..part.cols()).map(|c| c % 2 == 0).collect();
        let bto = dalut::decomp::BtoDecomp::new(part, pattern).expect("dims");
        let spliced = splice_bit(&g, bit, &AnyDecomp::Bto(bto));
        for x in 0..32u32 {
            let mask = !(1u32 << bit);
            prop_assert_eq!(spliced.eval(x) & mask, g.eval(x) & mask);
        }
    }
}
