//! # dalut
//!
//! A from-scratch Rust reproduction of *"High-accuracy Low-power
//! Reconfigurable Architectures for Decomposition-based Approximate
//! Lookup Table"* (DATE 2023).
//!
//! Storing a pre-computed function in a lookup table costs `2^n` entries;
//! decomposing each output bit as `F(φ(B), A)` (Ashenhurst decomposition,
//! approximated to minimise the mean error distance) shrinks that to
//! `2^b + 2^(n−b+1)` entries per bit. This crate family implements the
//! paper's entire stack:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`boolfn`] | truth tables, partitions, distributions, error metrics |
//! | [`decomp`] | exact + approximate decomposition (`OptForPart`, BTO, non-disjoint) |
//! | [`core`] | the BS-SA search, DALTA baseline, mode selection, trade-off sweeps |
//! | [`netlist`] | gate-level netlists, simulation, power/timing/area, Verilog export |
//! | [`hw`] | DALTA / BTO-Normal / BTO-Normal-ND / rounding hardware models |
//! | [`est`] | closed-form power/area/delay estimation, calibrated sweep pruning |
//! | [`runtime`] | online error-SLO controller: drift/fault detection, scrub, hot-swap |
//! | [`benchfns`] | the paper's ten benchmark functions |
//! | [`serve`] | the decomposition-as-a-service TCP server, config cache and chaos proxy |
//! | [`client`] | reconnecting, retrying line-protocol client with end-to-end verification |
//!
//! The facade re-exports the high-level API so `use dalut::prelude::*`
//! is enough for most applications. [`ApproxLutBuilder`]
//! (`dalut_core::ApproxLutBuilder`) is the single entrypoint for running
//! searches; attach an `Observer` (a `MetricsRecorder`, a
//! `JsonlTraceWriter` or your own sink) to trace or meter a run without
//! changing its results.
//!
//! ## Quickstart
//!
//! ```
//! use dalut::prelude::*;
//!
//! // 1. A target function: 8-bit quantised cosine.
//! let target = Benchmark::Cos.table(Scale::Reduced(8)).unwrap();
//!
//! // 2. Search for a decomposition-based approximation.
//! let outcome = ApproxLutBuilder::new(&target)
//!     .bs_sa(BsSaParams::fast())
//!     .policy(ArchPolicy::bto_normal_paper())
//!     .run()
//!     .unwrap();
//!
//! // Optional: re-run with metrics attached — same outcome, plus counters.
//! let metrics = MetricsRecorder::new();
//! let observed = ApproxLutBuilder::new(&target)
//!     .bs_sa(BsSaParams::fast())
//!     .policy(ArchPolicy::bto_normal_paper())
//!     .observer(&metrics)
//!     .run()
//!     .unwrap();
//! assert_eq!(observed.med, outcome.med);
//! assert_eq!(metrics.snapshot().counters.budget_ticks, observed.iterations);
//!
//! // 3. Map it onto the reconfigurable hardware and measure it.
//! let inst = build_approx_lut(&outcome.config, ArchStyle::BtoNormal).unwrap();
//! let reads: Vec<u32> = (0..256).collect();
//! let report = characterize(&inst, &reads, &CellLibrary::nangate45(), 1.0).unwrap();
//! assert!(report.energy_per_read_fj > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dalut_benchfns as benchfns;
pub use dalut_boolfn as boolfn;
pub use dalut_client as client;
pub use dalut_core as core;
pub use dalut_decomp as decomp;
pub use dalut_est as est;
pub use dalut_hw as hw;
pub use dalut_netlist as netlist;
pub use dalut_runtime as runtime;
pub use dalut_serve as serve;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dalut_benchfns::{Benchmark, Scale};
    pub use dalut_boolfn::{builder::QuantizedFn, InputDistribution, Partition, TruthTable};
    pub use dalut_core::{
        mode_sweep, Algorithm, ApproxLutBuilder, ApproxLutConfig, ArchPolicy, BitMode, BsSaParams,
        BudgetSpec, CancelToken, DaltaParams, DalutError, DistributionSpec, FunctionFingerprint,
        FunctionResolver, FunctionSource, JobSpec, JsonlTraceWriter, MetricsRecorder,
        MetricsSnapshot, MultiObserver, NoopObserver, Observer, RecordingObserver, RunBudget,
        SearchConfig, SearchEvent, SearchOutcome, SearchParams, Termination, TraceRecord,
    };
    pub use dalut_decomp::{
        bit_costs, exact_decompose, opt_for_part, opt_for_part_bto, opt_for_part_nd,
        pattern_to_minterms, reduce_index, AnyDecomp, DisjointDecomp, KernelStats, LsbFill,
        NonDisjointDecomp, OptParams, RowType,
    };
    pub use dalut_est::{CalibrationOptions, EstimatorMode, ResourceEstimate, ResourceEstimator};
    pub use dalut_hw::{
        build_approx_lut, characterize, fault_report, ArchInstance, ArchReport, ArchStyle,
        FaultModel, FaultReport, InstanceCache,
    };
    pub use dalut_netlist::{to_verilog, CellLibrary, Netlist, Simulator};
    pub use dalut_runtime::{Controller, ErrorSlo, RuntimeError, Variant, VariantBank};
}
